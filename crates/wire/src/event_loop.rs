//! The epoll event-loop transport, sharded: a handoff accept loop plus
//! N readiness loops (`--loop-threads`, default = available cores), each
//! owning a slice of the daemon's sockets.
//!
//! # Shape
//!
//! A dedicated **accept loop** owns the listener: it accepts until
//! `EWOULDBLOCK` and hands each socket to the shard chosen by the
//! accepted fd (`fd % N`), waking that shard's eventfd. Each **shard**
//! parks in its own `epoll_wait` and owns its connections outright —
//! read/write buffers, frame reassembly, watermarks, write-timeout
//! eviction sweeps — and reacts to three kinds of readiness:
//!
//! * **wakeup eventfd** — another thread has work for this shard: the
//!   broker queued deliveries ([`reef_pubsub::DeliveryNotifier`]), the
//!   accept loop handed over a socket, the federation enqueued peer
//!   messages or dialed a socket to adopt, or the server wants to shut
//!   down;
//! * **connection readable** — drain the socket into the connection's
//!   [`FrameDecoder`] (partial reads split frames at arbitrary byte
//!   boundaries) and execute every complete frame;
//! * **connection writable** — flush the connection's outbound buffer.
//!
//! The broker reaches the shards through [`ShardSet`], the shard-aware
//! delivery notifier: a publish's fan-out is grouped by target shard and
//! costs **one wake per shard**, not one per subscriber.
//!
//! # Outbound buffers and backpressure
//!
//! Every connection owns an outbound byte buffer. Replies and deliveries
//! are *encoded into* the buffer and flushed with as few `write` calls
//! as the socket accepts — a fan-out burst of deliveries coalesces into
//! one syscall (counted as `writes_coalesced`). The buffer is bounded by
//! a high watermark: when a consumer stops reading, the buffer fills,
//! the shard stops draining that subscriber's broker queue, the bounded
//! queue fills, and the broker's `--overflow` policy (drop-new /
//! drop-old / block / error) applies exactly as on the threaded
//! transport. A connection whose pending bytes make no progress for
//! `--write-timeout-ms` is evicted by its shard's sweep.
//!
//! One semantic caveat, documented in the README: under
//! `--overflow block` a publish executed on a shard cannot be overtaken
//! by that same shard's drain, so a full queue always waits out the
//! block timeout before dropping — the bound holds, the early-wake path
//! does not exist.
//!
//! # Federation on shard 0
//!
//! Peer links are pinned to shard 0 so federation and mesh message
//! ordering is untouched by sharding: shard 0 alone adopts dialed peer
//! sockets, pumps the link queues, drains the routing core's inbound
//! queue (`Federation::drain_incoming`) and ticks keepalive — no pump
//! thread, no per-link writer threads. An inbound client connection that
//! sends `PeerHello` on another shard upgrades there and then *migrates*
//! — socket, decoder and outbound buffer move to shard 0 wholesale, so
//! no byte is reordered or lost across the handover.

use crate::codec::CodecKind;
use crate::error::WireError;
use crate::federation::{PeerLink, PeerLoopHook};
use crate::frame::{Frame, FrameDecoder, PROTOCOL_V1_JSON};
use crate::poll::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::protocol::{Request, Response, ServerFrame};
use crate::server::{Connection, LoopControl, ServerCore};
use crate::stats::LoopStats;
use parking_lot::Mutex;
use reef_pubsub::{
    DeliveryNotifier, NodeId, PeerMsg, SubscriberHandle, SubscriberId, SubscriptionId,
};
use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Token of the listening socket (accept loop's epoll only).
const TOKEN_LISTENER: u64 = 0;
/// Token of a wakeup eventfd.
const TOKEN_WAKE: u64 = 1;
/// First token handed to a connection.
const TOKEN_FIRST_CONN: u64 = 2;

/// How much is read per `read` call on a readable socket.
const READ_CHUNK: usize = 16 * 1024;

/// Upper bound on bytes read from one connection per readiness event,
/// so a firehose sender cannot starve the rest of its shard.
const READ_BUDGET: usize = 256 * 1024;

/// Outbound buffer high watermark: past this many pending bytes the loop
/// stops moving deliveries/peer messages into the buffer, letting
/// backpressure reach the bounded broker queues.
const OUTBUF_HIGH_WATER: usize = 64 * 1024;

/// Upper bound on one `epoll_wait` park, so shutdown checks and
/// write-timeout sweeps stay prompt even on an idle daemon.
const LOOP_PARK_MS: i32 = 50;

/// A peer connection in flight between shards: a client socket that sent
/// `PeerHello` on a non-zero shard moves to shard 0 with every byte of
/// in-progress state, so the peer stream is never reordered.
struct MigratedPeer {
    stream: TcpStream,
    peer: SocketAddr,
    decoder: FrameDecoder,
    out: OutBuf,
    buffered_deliveries: usize,
    close_after_flush: bool,
    link: Arc<PeerLink>,
}

/// One shard's cross-thread mailbox: its wakeup eventfd plus the inboxes
/// other threads fill for it.
pub(crate) struct LoopShared {
    loop_id: usize,
    wakeup: EventFd,
    /// Set while a wake is already pending, so a 1000-subscriber fan-out
    /// costs one eventfd syscall instead of one per delivery. The shard
    /// clears it right after draining the eventfd.
    wake_pending: AtomicBool,
    /// Subscribers on this shard whose broker queues received deliveries
    /// since the shard last drained them.
    dirty: Mutex<HashSet<SubscriberId>>,
    /// Accepted client sockets handed over by the accept loop.
    handoff: Mutex<Vec<(TcpStream, SocketAddr)>>,
    /// Dialed peer sockets waiting to be registered (shard 0 only).
    adopted: Mutex<Vec<(NodeId, TcpStream)>>,
    /// Peer connections migrating in from other shards (shard 0 only).
    migrated: Mutex<Vec<MigratedPeer>>,
    /// This shard's counters, registered into the server aggregate.
    stats: Arc<LoopStats>,
}

impl LoopShared {
    /// Wake the shard unless a wake is already pending.
    fn wake_once(&self) {
        if !self.wake_pending.swap(true, Ordering::SeqCst) {
            self.wakeup.wake();
        }
    }
}

impl std::fmt::Debug for LoopShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopShared")
            .field("loop_id", &self.loop_id)
            .field("dirty", &self.dirty.lock().len())
            .field("handoff", &self.handoff.lock().len())
            .finish()
    }
}

/// The shard-aware face of the event-loop transport: every hook the rest
/// of the system signals the loops through. Delivery notifications are
/// routed (and batched) to the shard owning each subscriber, federation
/// hooks go to shard 0, and shutdown wakes everything.
pub(crate) struct ShardSet {
    shards: Vec<Arc<LoopShared>>,
    /// Wakes the accept loop out of its `epoll_wait` at shutdown.
    accept_wake: EventFd,
    /// Which shard serves each live wire subscriber — the routing table
    /// of the shard-aware delivery notifier. Written by the shard that
    /// registers/closes the connection, read on every publish fan-out.
    by_subscriber: Mutex<HashMap<SubscriberId, usize>>,
}

impl std::fmt::Debug for ShardSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSet")
            .field("shards", &self.shards.len())
            .field("subscribers", &self.by_subscriber.lock().len())
            .finish()
    }
}

impl DeliveryNotifier for ShardSet {
    fn notify(&self, subscriber: SubscriberId) {
        // Subscribers with no shard are registered directly on the
        // broker (embedding code, tests): not the loops' to serve.
        let Some(&shard) = self.by_subscriber.lock().get(&subscriber) else {
            return;
        };
        let shard = &self.shards[shard];
        shard.dirty.lock().insert(subscriber);
        shard.wake_once();
    }

    fn notify_batch(&self, subscribers: &[SubscriberId]) {
        // One publish = at most one wake per shard, however many of its
        // subscribers matched.
        let mut per_shard: Vec<Vec<SubscriberId>> = vec![Vec::new(); self.shards.len()];
        {
            let map = self.by_subscriber.lock();
            for subscriber in subscribers {
                if let Some(&shard) = map.get(subscriber) {
                    per_shard[shard].push(*subscriber);
                }
            }
        }
        for (idx, batch) in per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let shard = &self.shards[idx];
            shard.dirty.lock().extend(batch);
            shard.wake_once();
        }
    }
}

impl PeerLoopHook for ShardSet {
    fn adopt_socket(&self, node: NodeId, stream: TcpStream) {
        // Peer links are pinned to shard 0.
        self.shards[0].adopted.lock().push((node, stream));
        self.shards[0].wake_once();
    }

    fn wake(&self) {
        self.shards[0].wake_once();
    }
}

impl LoopControl for ShardSet {
    fn wake_loop(&self) {
        // Shutdown must always get through, pending flags or not.
        for shard in &self.shards {
            shard.wake_pending.store(true, Ordering::SeqCst);
            shard.wakeup.wake();
        }
        self.accept_wake.wake();
    }
}

/// Outbound byte buffer with a consumed-prefix cursor, so partial writes
/// never shift remaining bytes.
#[derive(Default)]
struct OutBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl OutBuf {
    fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Append one encoded frame; returns its wire length.
    fn push_frame(&mut self, frame: &Frame) -> usize {
        // Writing into a Vec cannot fail.
        frame.write_to(&mut self.buf).expect("write frame to Vec")
    }

    fn unsent(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    fn consume(&mut self, n: usize) {
        self.pos += n;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= OUTBUF_HIGH_WATER {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// What a registered socket is.
enum ConnRole {
    /// A client connection: requests in, replies and deliveries out.
    Client {
        /// Identity and counters shared with `connection_stats`.
        shared: Arc<Connection>,
        /// The broker-side delivery queue backing this connection.
        inbox: SubscriberHandle,
        /// Subscriptions placed by this connection.
        owned: HashSet<SubscriptionId>,
        /// `true` while the broker queue may hold deliveries the
        /// watermark kept out of the outbound buffer.
        hungry: bool,
    },
    /// A federation peer link: `PeerMsg` frames both ways.
    Peer { link: Arc<PeerLink> },
}

/// One socket registered on a shard.
struct LoopConn {
    stream: TcpStream,
    token: u64,
    peer: SocketAddr,
    decoder: FrameDecoder,
    out: OutBuf,
    role: ConnRole,
    /// Whether the epoll registration currently includes `EPOLLOUT`.
    want_write: bool,
    /// Set when a flush made no progress with bytes pending; cleared on
    /// progress. Drives write-timeout eviction.
    stalled_since: Option<Instant>,
    /// Event deliveries (client Deliver frames / peer EventFwd frames)
    /// somewhere in the unflushed buffer — a write failure loses data,
    /// not just replies or control traffic, only while this is nonzero.
    buffered_deliveries: usize,
    /// Close once the outbound buffer drains (orderly `Bye`, fatal
    /// protocol error after the error reply).
    close_after_flush: bool,
}

/// The threads a [`spawn`] call starts, paired with the control handle
/// the server uses to reach them.
pub(crate) type SpawnedLoops = (Vec<JoinHandle<()>>, Arc<dyn LoopControl>);

/// Start the sharded event loop: one accept thread plus `loop_threads`
/// shard threads.
///
/// Registers the shard set as the broker's delivery notifier and the
/// federation's peer hook before any thread starts, so nothing published
/// or dialed in the startup window is missed.
pub(crate) fn spawn(
    listener: TcpListener,
    core: Arc<ServerCore>,
    loop_threads: usize,
) -> Result<SpawnedLoops, WireError> {
    let shard_count = loop_threads.max(1);
    listener.set_nonblocking(true)?;
    let mut shards = Vec::with_capacity(shard_count);
    for loop_id in 0..shard_count {
        let stats = Arc::new(LoopStats::new(loop_id as u64));
        core.stats.register_loop(Arc::clone(&stats));
        shards.push(Arc::new(LoopShared {
            loop_id,
            wakeup: EventFd::new()?,
            wake_pending: AtomicBool::new(false),
            dirty: Mutex::new(HashSet::new()),
            handoff: Mutex::new(Vec::new()),
            adopted: Mutex::new(Vec::new()),
            migrated: Mutex::new(Vec::new()),
            stats,
        }));
    }
    let set = Arc::new(ShardSet {
        shards: shards.clone(),
        accept_wake: EventFd::new()?,
        by_subscriber: Mutex::new(HashMap::new()),
    });
    core.broker
        .set_delivery_notifier(Arc::clone(&set) as Arc<dyn DeliveryNotifier>);
    core.federation
        .set_loop_hook(Arc::clone(&set) as Arc<dyn PeerLoopHook>);
    let mut threads = Vec::with_capacity(shard_count + 1);
    for shard in &shards {
        let epoll = Epoll::new()?;
        epoll.add(shard.wakeup.raw_fd(), EPOLLIN, TOKEN_WAKE)?;
        let event_loop = EventLoop {
            core: Arc::clone(&core),
            set: Arc::clone(&set),
            shared: Arc::clone(shard),
            epoll,
            conns: HashMap::new(),
            by_subscriber: HashMap::new(),
            by_node: HashMap::new(),
            next_token: TOKEN_FIRST_CONN,
            deliver_cache: None,
        };
        threads.push(
            std::thread::Builder::new()
                .name(format!("reefd-loop-{}", shard.loop_id))
                .spawn(move || event_loop.run())
                .expect("spawn event loop shard"),
        );
    }
    let accept_epoll = Epoll::new()?;
    accept_epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
    accept_epoll.add(set.accept_wake.raw_fd(), EPOLLIN, TOKEN_WAKE)?;
    let accept = AcceptLoop {
        core,
        set: Arc::clone(&set),
        epoll: accept_epoll,
        listener,
    };
    threads.push(
        std::thread::Builder::new()
            .name("reefd-accept-loop".into())
            .spawn(move || accept.run())
            .expect("spawn accept loop"),
    );
    Ok((threads, set as Arc<dyn LoopControl>))
}

/// The handoff accept loop: owns the listener, assigns each accepted
/// socket to a shard by fd, never touches a payload byte.
struct AcceptLoop {
    core: Arc<ServerCore>,
    set: Arc<ShardSet>,
    epoll: Epoll,
    listener: TcpListener,
}

impl AcceptLoop {
    fn run(self) {
        let mut events = [EpollEvent::default(); 8];
        loop {
            if self.core.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let n = match self.epoll.wait(&mut events, LOOP_PARK_MS) {
                Ok(n) => n,
                Err(_) => {
                    self.core.stats.record_error();
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            };
            if self.core.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if events
                .iter()
                .take(n)
                .any(|event| event.data() == TOKEN_WAKE)
            {
                self.set.accept_wake.drain();
            }
            if events
                .iter()
                .take(n)
                .any(|event| event.data() == TOKEN_LISTENER)
            {
                self.accept_until_blocked();
            }
        }
    }

    fn accept_until_blocked(&self) {
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    if self.core.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    // Shard assignment by accepted-fd hash: descriptor
                    // numbers recycle evenly, so modulo spreads even
                    // short-lived churn across the shards.
                    let idx = stream.as_raw_fd() as usize % self.set.shards.len();
                    let shard = &self.set.shards[idx];
                    shard.handoff.lock().push((stream, peer));
                    shard.wake_once();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    // Persistent accept failure (e.g. fd exhaustion):
                    // level-triggered epoll would re-report the pending
                    // connection immediately and spin this thread at
                    // 100% CPU, so back off briefly — the same
                    // mitigation the threaded accept loop uses.
                    self.core.stats.record_error();
                    std::thread::sleep(Duration::from_millis(50));
                    return;
                }
            }
        }
    }
}

/// One shard: an epoll instance and the connections it owns.
struct EventLoop {
    core: Arc<ServerCore>,
    set: Arc<ShardSet>,
    shared: Arc<LoopShared>,
    epoll: Epoll,
    conns: HashMap<u64, LoopConn>,
    by_subscriber: HashMap<SubscriberId, u64>,
    by_node: HashMap<NodeId, u64>,
    next_token: u64,
    /// Last `Deliver` frame encoded, keyed by event identity and codec
    /// version. A publish fans one event out to every subscriber on the
    /// shard in a row, so this single entry turns N identical encodes
    /// into one encode plus N-1 clones of the bytes. Holding the `Arc`
    /// pins the event so pointer identity cannot be recycled under us.
    deliver_cache: Option<(Arc<reef_pubsub::PublishedEvent>, u8, Frame)>,
}

impl EventLoop {
    fn run(mut self) {
        // Shard 0 alone runs federation duties: peer links are pinned
        // there so sharding cannot reorder the peer message streams.
        let primary = self.shared.loop_id == 0;
        let mut events = vec![EpollEvent::default(); 1024];
        loop {
            if self.core.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let n = match self.epoll.wait(&mut events, LOOP_PARK_MS) {
                Ok(n) => n,
                Err(_) => {
                    self.core.stats.record_error();
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            };
            if self.core.shutdown.load(Ordering::SeqCst) {
                break;
            }
            if n > 0 {
                self.core.stats.record_loop_wakeup();
                self.shared.stats.record_wakeup();
            }
            for event in events.iter().take(n) {
                let token = event.data();
                let ready = event.readiness();
                match token {
                    TOKEN_WAKE => {
                        self.shared.wakeup.drain();
                        // Re-arm before the tail processing: a notify
                        // landing after this point wakes the next
                        // iteration, one landing before it is covered by
                        // the drain below either way.
                        self.shared.wake_pending.store(false, Ordering::SeqCst);
                    }
                    token => self.conn_ready(token, ready),
                }
            }
            self.adopt_handoffs();
            if primary {
                self.adopt_dialed_peers();
                self.adopt_migrated_peers();
            }
            self.drain_dirty_subscribers();
            self.push_feed_notices();
            if primary {
                self.pump_all_peer_queues();
                // Peer frames read this iteration were queued into the
                // routing core's inbound queue; route them now, on this
                // thread — shard 0 *is* the federation pump in this mode.
                self.core.federation.drain_incoming();
                self.core.federation.tick();
            }
            self.sweep_stalled_writers();
        }
        // Orderly teardown: deregister every client like a normal
        // disconnect would, so a broker outliving the server is clean.
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token);
        }
    }

    // -- accepted-socket handoff -----------------------------------------

    /// Register every client socket the accept loop handed this shard.
    fn adopt_handoffs(&mut self) {
        let handoff: Vec<(TcpStream, SocketAddr)> =
            std::mem::take(&mut *self.shared.handoff.lock());
        for (stream, peer) in handoff {
            if self.core.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if self.register_client(stream, peer).is_err() {
                self.core.stats.record_error();
            }
        }
    }

    fn register_client(&mut self, stream: TcpStream, peer: SocketAddr) -> Result<(), WireError> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        let (subscriber, inbox) = self.core.broker.register();
        // No fd-clones at all: the loop owns the socket, writes through its
        // outbound buffers and shuts the stream down itself, so each
        // connection costs exactly one descriptor.
        let shared = Arc::new(Connection::new(
            peer,
            subscriber,
            None,
            None,
            Some(self.shared.loop_id as u32),
        ));
        self.core.stats.record_open();
        shared.stats.record_open();
        self.core.connections.lock().push(Arc::clone(&shared));
        let token = self.next_token;
        self.next_token += 1;
        self.epoll
            .add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)?;
        self.by_subscriber.insert(subscriber, token);
        // Route future delivery notifications for this subscriber here.
        self.set
            .by_subscriber
            .lock()
            .insert(subscriber, self.shared.loop_id);
        self.shared.stats.conn_added();
        self.conns.insert(
            token,
            LoopConn {
                stream,
                token,
                peer,
                decoder: FrameDecoder::with_max_frame(self.core.max_frame),
                out: OutBuf::default(),
                role: ConnRole::Client {
                    shared,
                    inbox,
                    owned: HashSet::new(),
                    hungry: false,
                },
                want_write: false,
                stalled_since: None,
                buffered_deliveries: 0,
                close_after_flush: false,
            },
        );
        Ok(())
    }

    // -- readiness dispatch ----------------------------------------------

    fn conn_ready(&mut self, token: u64, ready: u32) {
        if !self.conns.contains_key(&token) {
            // Closed earlier in this same event batch.
            return;
        }
        if ready & (EPOLLIN | EPOLLRDHUP) != 0 {
            self.core.stats.record_loop_read_events(1);
            self.shared.stats.record_read_events(1);
            self.read_ready(token);
        }
        if self.conns.contains_key(&token) && ready & EPOLLOUT != 0 {
            self.core.stats.record_loop_write_events(1);
            self.shared.stats.record_write_events(1);
            self.flush(token);
        }
        // A pure error/hangup with nothing readable: tear down. (If data
        // was readable, the read path already saw the EOF or error.)
        if ready & (EPOLLERR | EPOLLHUP) != 0
            && ready & EPOLLIN == 0
            && self.conns.contains_key(&token)
        {
            self.close_conn(token);
        }
    }

    fn read_ready(&mut self, token: u64) {
        let mut scratch = [0u8; READ_CHUNK];
        // Per-readiness read budget: one endless sender must not pin the
        // shard inside this function and starve every other connection,
        // the delivery pumps and the stall sweep. Level-triggered epoll
        // re-reports whatever is left for the next iteration.
        let mut budget = READ_BUDGET;
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    self.close_conn(token);
                    return;
                }
                Ok(n) => {
                    // A closing conversation ignores further input:
                    // discard the bytes (still draining the socket so
                    // level-triggered readiness goes quiet) instead of
                    // buffering them without bound while the error reply
                    // waits to flush.
                    if !conn.close_after_flush {
                        conn.decoder.extend(&scratch[..n]);
                        // Frames are executed as soon as they are
                        // complete, so one endless sender cannot buffer
                        // unboundedly.
                        if !self.process_frames(token) {
                            return;
                        }
                    }
                    budget = budget.saturating_sub(n);
                    if budget == 0 {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.record_conn_error(token);
                    self.close_conn(token);
                    return;
                }
            }
        }
        self.flush(token);
    }

    /// Execute every complete frame buffered on `token`. Returns `false`
    /// when the connection was closed or left this shard.
    fn process_frames(&mut self, token: u64) -> bool {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            if conn.close_after_flush {
                // The conversation is over; anything further is ignored.
                return true;
            }
            let frame = match conn.decoder.next_frame() {
                Ok(Some(frame)) => frame,
                Ok(None) => return true,
                Err(_) => {
                    self.record_conn_error(token);
                    self.close_conn(token);
                    return false;
                }
            };
            let wire_len = frame.wire_len();
            match &conn.role {
                ConnRole::Client { shared, .. } => {
                    shared.stats.record_frame_in(frame.version, wire_len);
                    self.core.stats.record_frame_in(frame.version, wire_len);
                    if !self.handle_client_frame(token, frame) {
                        return false;
                    }
                }
                ConnRole::Peer { link } => {
                    link.stats.record_frame_in(frame.version, wire_len);
                    self.core
                        .federation
                        .links
                        .wire
                        .record_frame_in(frame.version, wire_len);
                    if !self.handle_peer_frame(token, frame) {
                        return false;
                    }
                }
            }
        }
    }

    // -- client protocol -------------------------------------------------

    /// Handle one frame on a client connection. Returns `false` when the
    /// connection was closed.
    fn handle_client_frame(&mut self, token: u64, frame: Frame) -> bool {
        let frame_wire_len = frame.wire_len();
        let conn = self.conns.get_mut(&token).expect("caller checked");
        let ConnRole::Client { shared, .. } = &conn.role else {
            unreachable!("caller matched Client");
        };
        let shared = Arc::clone(shared);
        // Codec negotiation: the first frame's version byte picks the
        // codec for the connection's lifetime; later frames must not
        // switch.
        let negotiated = shared.codec_version.load(Ordering::SeqCst);
        if negotiated == 0 {
            if CodecKind::for_version(frame.version).is_none() {
                self.record_conn_error(token);
                // Answer in JSON, the one encoding any client can read,
                // then give up on the stream (unknown-version payloads
                // cannot be framed reliably).
                let message = format!(
                    "unsupported protocol version {}; this server speaks v1 (json) and v2 (binary)",
                    frame.version
                );
                self.queue_reply(token, 0, Response::Error { message });
                if let Some(c) = self.conns.get_mut(&token) {
                    c.close_after_flush = true;
                }
                self.flush(token);
                return self.conns.contains_key(&token);
            }
            shared.codec_version.store(frame.version, Ordering::SeqCst);
        } else if frame.version != negotiated {
            self.record_conn_error(token);
            let message = format!(
                "codec switched mid-stream: connection negotiated v{negotiated}, frame carries v{}",
                frame.version
            );
            self.queue_reply(token, 0, Response::Error { message });
            if let Some(c) = self.conns.get_mut(&token) {
                c.close_after_flush = true;
            }
            self.flush(token);
            return self.conns.contains_key(&token);
        }
        let client_frame = match shared.codec().decode_client(&frame) {
            Ok(client_frame) => client_frame,
            Err(e) => {
                self.record_conn_error(token);
                self.queue_reply(
                    token,
                    0,
                    Response::Error {
                        message: e.to_string(),
                    },
                );
                // On v1 the error reply pairs by order, so the
                // conversation can continue. On v2 the real correlation
                // id is unrecoverable — close instead.
                if frame.version != PROTOCOL_V1_JSON {
                    if let Some(c) = self.conns.get_mut(&token) {
                        c.close_after_flush = true;
                    }
                    self.flush(token);
                    return self.conns.contains_key(&token);
                }
                return true;
            }
        };
        shared.stats.record_request();
        self.core.stats.record_request();

        if let Request::PeerHello {
            version,
            broker,
            broker_id,
        } = client_frame.request
        {
            return self.upgrade_to_peer(token, client_frame.corr, version, broker, broker_id);
        }

        let is_bye = matches!(client_frame.request, Request::Bye);
        let response = {
            let conn = self.conns.get_mut(&token).expect("conn still live");
            let ConnRole::Client { owned, .. } = &mut conn.role else {
                unreachable!("still a client");
            };
            // `owned` borrows the connection while the broker executes
            // the request; the core never reaches back into the loop.
            let mut owned_taken = std::mem::take(owned);
            let response = self.core.handle_request(
                &shared,
                &mut owned_taken,
                client_frame.request,
                frame_wire_len,
            );
            if let Some(conn) = self.conns.get_mut(&token) {
                if let ConnRole::Client { owned, .. } = &mut conn.role {
                    *owned = owned_taken;
                }
            }
            response
        };
        if matches!(response, Response::Error { .. }) {
            self.record_conn_error(token);
        }
        self.queue_reply(token, client_frame.corr, response);
        if is_bye {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.close_after_flush = true;
            }
            self.flush(token);
        }
        // Ordinary replies stay buffered: the read path flushes once per
        // readiness batch, so a pipelined request burst answers with one
        // coalesced write instead of one syscall per request.
        self.conns.contains_key(&token)
    }

    /// Append one correlated reply to the connection's outbound buffer.
    fn queue_reply(&mut self, token: u64, corr: u64, response: Response) {
        self.queue_server_frame(token, ServerFrame::Reply { corr, response });
    }

    /// Append one server frame (reply or unsolicited notice) to a client
    /// connection's outbound buffer.
    fn queue_server_frame(&mut self, token: u64, message: ServerFrame) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let ConnRole::Client { shared, .. } = &conn.role else {
            return;
        };
        match shared.codec().encode_server(&message) {
            Ok(frame) => {
                let written = conn.out.push_frame(&frame);
                shared.stats.record_frame_out(frame.version, written);
                self.core.stats.record_frame_out(frame.version, written);
            }
            Err(_) => {
                shared.stats.record_error();
                self.core.stats.record_error();
            }
        }
    }

    /// Turn a client connection into a federation peer link: the role
    /// swaps in place, and — when this is not shard 0 — the connection
    /// then migrates to shard 0, where every peer link lives.
    fn upgrade_to_peer(
        &mut self,
        token: u64,
        corr: u64,
        version: u8,
        peer_broker: String,
        peer_broker_id: u32,
    ) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else {
            return false;
        };
        let ConnRole::Client { shared, owned, .. } = &conn.role else {
            return true;
        };
        let shared = Arc::clone(shared);
        let owned = owned.clone();
        let negotiated = shared.codec_version.load(Ordering::SeqCst);
        if version != negotiated {
            let message = format!(
                "PeerHello version field v{version} disagrees with the frame codec v{negotiated}"
            );
            self.queue_reply(token, corr, Response::Error { message });
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.close_after_flush = true;
            }
            self.flush(token);
            return self.conns.contains_key(&token);
        }
        shared.upgraded.store(true, Ordering::SeqCst);
        let welcome = Response::PeerWelcome {
            version: negotiated,
            broker: self.core.federation.name().to_owned(),
            broker_id: self.core.federation.broker_id(),
        };
        self.queue_reply(token, corr, welcome);
        // No longer a client: withdraw its subscriptions, drop its broker
        // subscriber, leave the client registry.
        self.core
            .autosub
            .drop_subscriber(&self.core, shared.subscriber);
        for sub in &owned {
            self.core.federation.local_unsubscribe(*sub);
        }
        let _ = self.core.broker.deregister(shared.subscriber);
        self.by_subscriber.remove(&shared.subscriber);
        self.set.by_subscriber.lock().remove(&shared.subscriber);
        self.core
            .connections
            .lock()
            .retain(|c| !Arc::ptr_eq(c, &shared));
        shared.stats.record_close();
        self.core.stats.record_close();
        let codec = CodecKind::for_version(negotiated).unwrap_or(CodecKind::Json);
        let conn = self.conns.get_mut(&token).expect("conn still live");
        let control = match conn.stream.try_clone() {
            Ok(control) => control,
            Err(_) => {
                self.core.stats.record_error();
                self.drop_conn_raw(token);
                return false;
            }
        };
        let peer_addr = conn.peer.to_string();
        match self.core.federation.adopt_inbound_link(
            control,
            peer_broker,
            peer_broker_id,
            peer_addr,
            codec,
        ) {
            Ok((node, link)) if self.shared.loop_id == 0 => {
                let conn = self.conns.get_mut(&token).expect("conn still live");
                conn.role = ConnRole::Peer { link };
                self.by_node.insert(node, token);
                // Advertisement sync for the new neighbor is already on
                // the link queue; move it behind the PeerWelcome bytes.
                self.pump_peer_queue(token);
                true
            }
            Ok((_node, link)) => {
                // Peer links are pinned to shard 0 so federation/mesh
                // ordering is untouched by sharding: hand the socket
                // over wholesale — decoder (frames that followed
                // PeerHello in the same read), outbound buffer
                // (PeerWelcome bytes), flags and all.
                let conn = self.conns.remove(&token).expect("conn still live");
                let _ = self.epoll.delete(conn.stream.as_raw_fd());
                self.shared.stats.conn_removed();
                let primary = &self.set.shards[0];
                primary.migrated.lock().push(MigratedPeer {
                    stream: conn.stream,
                    peer: conn.peer,
                    decoder: conn.decoder,
                    out: conn.out,
                    buffered_deliveries: conn.buffered_deliveries,
                    close_after_flush: conn.close_after_flush,
                    link,
                });
                primary.wake_once();
                false
            }
            Err(_) => {
                self.core.stats.record_error();
                self.drop_conn_raw(token);
                false
            }
        }
    }

    /// Tear down a half-upgraded connection whose client-side
    /// bookkeeping (deregistration, close accounting) already ran —
    /// going through [`EventLoop::close_conn`] would count the close a
    /// second time.
    fn drop_conn_raw(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            self.shared.stats.conn_removed();
        }
    }

    // -- peer protocol ---------------------------------------------------

    /// Handle one frame on a peer link. Returns `false` when the
    /// connection was closed.
    fn handle_peer_frame(&mut self, token: u64, frame: Frame) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else {
            return false;
        };
        let ConnRole::Peer { link } = &conn.role else {
            return true;
        };
        // The link's codec was fixed at handshake; `decode_peer` rejects
        // any frame whose version byte disagrees.
        match link.codec.codec().decode_peer(&frame) {
            Ok(msg) => {
                self.core.federation.incoming(link.node, msg);
                true
            }
            Err(_) => {
                link.stats.record_error();
                self.core.stats.record_error();
                self.close_conn(token);
                false
            }
        }
    }

    /// Register a freshly dialed peer socket handed over by the
    /// federation (startup dial, `add_peer`, redial). Shard 0 only.
    fn adopt_dialed_peers(&mut self) {
        let adopted: Vec<(NodeId, TcpStream)> = std::mem::take(&mut *self.shared.adopted.lock());
        for (node, stream) in adopted {
            let Some(link) = self.core.federation.link(node) else {
                // The link died before the loop saw it.
                continue;
            };
            let peer = match stream.peer_addr() {
                Ok(peer) => peer,
                Err(_) => {
                    self.core.federation.peer_disconnected(node);
                    continue;
                }
            };
            if stream.set_nonblocking(true).is_err() {
                self.core.federation.peer_disconnected(node);
                continue;
            }
            let token = self.next_token;
            self.next_token += 1;
            if self
                .epoll
                .add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)
                .is_err()
            {
                self.core.federation.peer_disconnected(node);
                continue;
            }
            self.by_node.insert(node, token);
            self.shared.stats.conn_added();
            self.conns.insert(
                token,
                LoopConn {
                    stream,
                    token,
                    peer,
                    decoder: FrameDecoder::with_max_frame(self.core.max_frame),
                    out: OutBuf::default(),
                    role: ConnRole::Peer { link },
                    want_write: false,
                    stalled_since: None,
                    buffered_deliveries: 0,
                    close_after_flush: false,
                },
            );
            // Neighbor sync enqueued at registration is waiting.
            self.pump_peer_queue(token);
        }
    }

    /// Adopt peer connections that upgraded on another shard and
    /// migrated here. Shard 0 only.
    fn adopt_migrated_peers(&mut self) {
        let migrated: Vec<MigratedPeer> = std::mem::take(&mut *self.shared.migrated.lock());
        for m in migrated {
            let token = self.next_token;
            self.next_token += 1;
            if self
                .epoll
                .add(m.stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)
                .is_err()
            {
                self.core.stats.record_error();
                self.core.federation.peer_disconnected(m.link.node);
                continue;
            }
            self.by_node.insert(m.link.node, token);
            self.shared.stats.conn_added();
            self.conns.insert(
                token,
                LoopConn {
                    stream: m.stream,
                    token,
                    peer: m.peer,
                    decoder: m.decoder,
                    out: m.out,
                    role: ConnRole::Peer { link: m.link },
                    want_write: false,
                    stalled_since: None,
                    buffered_deliveries: m.buffered_deliveries,
                    close_after_flush: m.close_after_flush,
                },
            );
            // Frames that followed PeerHello in the same read burst are
            // already sitting in the migrated decoder; no readiness
            // event will re-announce them, so execute them now, then
            // flush the PeerWelcome and pump the advertisement sync.
            if self.process_frames(token) {
                self.flush(token);
                self.pump_peer_queue(token);
            }
        }
    }

    /// Move queued `PeerMsg`s from every link queue into the owning
    /// connection's outbound buffer.
    fn pump_all_peer_queues(&mut self) {
        let tokens: Vec<u64> = self.by_node.values().copied().collect();
        for token in tokens {
            self.pump_peer_queue(token);
        }
    }

    fn pump_peer_queue(&mut self, token: u64) {
        loop {
            let mut moved = 0usize;
            loop {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                let ConnRole::Peer { link } = &conn.role else {
                    return;
                };
                if conn.out.pending() >= OUTBUF_HIGH_WATER {
                    break;
                }
                let Ok(msg) = link.out_rx.try_recv() else {
                    break;
                };
                let is_event = matches!(msg, PeerMsg::EventFwd { .. });
                if is_event {
                    link.queued_events.fetch_sub(1, Ordering::Relaxed);
                }
                match link.codec.codec().encode_peer(&msg) {
                    Ok(frame) => {
                        let written = conn.out.push_frame(&frame);
                        if is_event {
                            conn.buffered_deliveries += 1;
                        }
                        link.stats.record_frame_out(frame.version, written);
                        self.core
                            .federation
                            .links
                            .wire
                            .record_frame_out(frame.version, written);
                        moved += 1;
                    }
                    Err(_) => {
                        link.stats.record_error();
                    }
                }
            }
            if moved > 1 {
                self.core.stats.record_write_coalesced();
                self.shared.stats.record_write_coalesced();
            }
            if moved == 0 {
                return;
            }
            self.write_out(token);
            // Keep going only if the socket drained the watermark away
            // and the queue may still hold messages.
            let Some(conn) = self.conns.get(&token) else {
                return;
            };
            if conn.out.pending() >= OUTBUF_HIGH_WATER {
                return;
            }
        }
    }

    // -- deliveries ------------------------------------------------------

    /// Push queued autosub `FeedChanged` notices into their owning
    /// connections' outbound buffers. The loop's park bound
    /// (`LOOP_PARK_MS`) caps notice latency without a dedicated wake.
    fn push_feed_notices(&mut self) {
        if !self.core.autosub.has_notices() {
            return;
        }
        let targets: Vec<(SubscriberId, u64)> = self
            .by_subscriber
            .iter()
            .map(|(subscriber, token)| (*subscriber, *token))
            .collect();
        for (subscriber, token) in targets {
            let changes = self.core.autosub.take_notices(subscriber);
            if changes.is_empty() {
                continue;
            }
            for change in changes {
                self.queue_server_frame(token, ServerFrame::FeedChanged(change));
            }
            self.flush(token);
        }
    }

    /// Drain the broker queues of every subscriber the notifier flagged
    /// onto this shard.
    fn drain_dirty_subscribers(&mut self) {
        let dirty: Vec<SubscriberId> = {
            let mut set = self.shared.dirty.lock();
            if set.is_empty() {
                return;
            }
            set.drain().collect()
        };
        for subscriber in dirty {
            // An id without a token closed between notify and drain.
            if let Some(&token) = self.by_subscriber.get(&subscriber) {
                self.pump_deliveries(token);
            }
        }
    }

    /// Encode queued deliveries for one connection into its outbound
    /// buffer, up to the watermark, and flush with as few writes as the
    /// socket accepts — the coalescing path.
    fn pump_deliveries(&mut self, token: u64) {
        loop {
            let mut batched = 0usize;
            loop {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                let ConnRole::Client {
                    shared,
                    inbox,
                    hungry,
                    ..
                } = &mut conn.role
                else {
                    return;
                };
                if conn.out.pending() >= OUTBUF_HIGH_WATER {
                    // Watermark: leave the rest on the bounded broker
                    // queue and come back when the socket drains.
                    *hungry = true;
                    break;
                }
                let Some(event) = inbox.try_recv() else {
                    *hungry = false;
                    break;
                };
                let codec = shared.codec();
                // Fan-out reuse: every subscriber of this shard gets the
                // same event, so encode it once per (event, codec) and
                // replay the bytes for the rest of the shard.
                let hit = matches!(
                    &self.deliver_cache,
                    Some((cached, version, _))
                        if Arc::ptr_eq(cached, &event) && *version == codec.version()
                );
                if !hit {
                    match codec.encode_deliver(&event) {
                        Ok(frame) => {
                            self.deliver_cache = Some((Arc::clone(&event), codec.version(), frame));
                        }
                        Err(_) => {
                            self.deliver_cache = None;
                            shared.stats.record_error();
                            self.core.stats.record_error();
                            continue;
                        }
                    }
                }
                let Some((_, _, frame)) = &self.deliver_cache else {
                    unreachable!("deliver cache filled above");
                };
                let written = conn.out.push_frame(frame);
                conn.buffered_deliveries += 1;
                shared.stats.record_frame_out(frame.version, written);
                self.core.stats.record_frame_out(frame.version, written);
                shared.stats.record_delivery();
                self.core.stats.record_delivery();
                batched += 1;
            }
            if batched > 1 {
                self.core.stats.record_write_coalesced();
                self.shared.stats.record_write_coalesced();
            }
            if batched == 0 {
                return;
            }
            self.write_out(token);
            // Another round only when the socket drained the buffer and
            // the broker queue may still be holding events back.
            let Some(conn) = self.conns.get(&token) else {
                return;
            };
            let still_hungry = matches!(conn.role, ConnRole::Client { hungry: true, .. });
            if !still_hungry || conn.out.pending() >= OUTBUF_HIGH_WATER {
                return;
            }
        }
    }

    // -- writes ----------------------------------------------------------

    /// Write as much pending output as the socket accepts, then top the
    /// buffer back up from whatever the watermark held back.
    fn flush(&mut self, token: u64) {
        self.write_out(token);
        let Some(conn) = self.conns.get(&token) else {
            return;
        };
        let is_hungry_client = matches!(conn.role, ConnRole::Client { hungry: true, .. });
        let is_peer = matches!(conn.role, ConnRole::Peer { .. });
        if conn.out.pending() < OUTBUF_HIGH_WATER {
            if is_hungry_client {
                self.pump_deliveries(token);
            } else if is_peer {
                self.pump_peer_queue(token);
            }
        }
    }

    /// The raw write half of [`EventLoop::flush`]: drain pending bytes,
    /// manage `EPOLLOUT` interest and the stall clock, never re-pump.
    fn write_out(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.out.pending() == 0 {
                break;
            }
            match conn.stream.write(conn.out.unsent()) {
                Ok(0) => {
                    self.record_conn_error(token);
                    self.close_conn(token);
                    return;
                }
                Ok(n) => {
                    conn.out.consume(n);
                    conn.stalled_since = None;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if conn.stalled_since.is_none() {
                        conn.stalled_since = Some(Instant::now());
                    }
                    if !conn.want_write {
                        conn.want_write = true;
                        let fd = conn.stream.as_raw_fd();
                        let _ = self
                            .epoll
                            .modify(fd, EPOLLIN | EPOLLRDHUP | EPOLLOUT, token);
                    }
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.record_delivery_drop(token);
                    self.close_conn(token);
                    return;
                }
            }
        }
        // Fully flushed.
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.stalled_since = None;
        conn.buffered_deliveries = 0;
        if conn.want_write {
            conn.want_write = false;
            let fd = conn.stream.as_raw_fd();
            let _ = self.epoll.modify(fd, EPOLLIN | EPOLLRDHUP, token);
        }
        if conn.close_after_flush {
            self.close_conn(token);
        }
    }

    /// Evict connections whose pending bytes made no progress for the
    /// configured write timeout — the slow-consumer bound, swept per
    /// shard.
    fn sweep_stalled_writers(&mut self) {
        let timeout = self.core.write_timeout;
        let stalled: Vec<u64> = self
            .conns
            .values()
            .filter(|conn| {
                conn.stalled_since
                    .is_some_and(|since| since.elapsed() >= timeout)
            })
            .map(|conn| conn.token)
            .collect();
        for token in stalled {
            self.record_delivery_drop(token);
            self.close_conn(token);
        }
    }

    // -- teardown and accounting -----------------------------------------

    fn record_conn_error(&self, token: u64) {
        self.core.stats.record_error();
        if let Some(conn) = self.conns.get(&token) {
            match &conn.role {
                ConnRole::Client { shared, .. } => shared.stats.record_error(),
                ConnRole::Peer { link } => link.stats.record_error(),
            }
        }
    }

    /// Count undeliverable pending output against the right counters.
    fn record_delivery_drop(&self, token: u64) {
        self.core.stats.record_error();
        let Some(conn) = self.conns.get(&token) else {
            return;
        };
        // Only charge a delivery drop when the doomed buffer actually
        // held deliveries — a stalled Stats reply or advertisement sync
        // is an error, not lost event data.
        let lost_deliveries = conn.buffered_deliveries > 0;
        if lost_deliveries {
            self.core.stats.record_delivery_drop();
        }
        match &conn.role {
            ConnRole::Client { shared, .. } => {
                shared.stats.record_error();
                if lost_deliveries {
                    shared.stats.record_delivery_drop();
                }
            }
            ConnRole::Peer { link } => {
                link.stats.record_error();
                if lost_deliveries {
                    link.stats.record_delivery_drop();
                }
            }
        }
    }

    fn close_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        let _ = self.epoll.delete(conn.stream.as_raw_fd());
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        self.shared.stats.conn_removed();
        match conn.role {
            ConnRole::Client { shared, owned, .. } => {
                self.by_subscriber.remove(&shared.subscriber);
                self.set.by_subscriber.lock().remove(&shared.subscriber);
                self.core.finish_connection(&shared, &owned);
            }
            ConnRole::Peer { link } => {
                let node = link.node;
                self.by_node.remove(&node);
                drop(link);
                // Withdraw the peer's advertisements, re-advertise to the
                // remaining links, maybe kick off a redial.
                self.core.federation.peer_disconnected(node);
            }
        }
    }
}
