//! Minimal Linux `epoll` + `eventfd` bindings for the event-loop
//! transport.
//!
//! The build environment has no registry access and therefore no `libc`
//! or `mio` crate, so the handful of syscalls the readiness loop needs
//! are declared directly against the C library Rust already links on
//! Linux: `epoll_create1` / `epoll_ctl` / `epoll_wait` for readiness,
//! `eventfd` plus `read`/`write` for cross-thread wakeups, and `fcntl`
//! to flip descriptors nonblocking. Everything is wrapped in two small
//! RAII types — [`Epoll`] and [`EventFd`] — that keep the `unsafe`
//! confined to this module.
//!
//! Linux-only by design (the tier-1 environment is Linux); the
//! `BrokerServer` falls back to the threaded transport elsewhere.

#![cfg(target_os = "linux")]

use std::io;
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::io::RawFd;

/// Readable readiness (socket has bytes, listener has a connection).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (socket send buffer has room again).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition on the descriptor.
pub const EPOLLERR: u32 = 0x008;
/// Hangup: the peer closed its end.
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down the writing half (half-close detection).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
const O_NONBLOCK: c_int = 0o4000;

/// One readiness report from the kernel.
///
/// Matches the kernel's `struct epoll_event` layout: packed on x86-64,
/// naturally aligned elsewhere.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Debug, Clone, Copy, Default)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// The token registered alongside the descriptor.
    pub token: u64,
}

impl EpollEvent {
    /// The readiness bitmask (copied out of the possibly-packed field).
    pub fn readiness(&self) -> u32 {
        // Copy out of the possibly-packed field before returning.
        {
            self.events
        }
    }

    /// The registered token (copied out of the possibly-packed field).
    pub fn data(&self) -> u64 {
        // Copy out of the possibly-packed field before returning.
        {
            self.token
        }
    }
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

/// Put a raw descriptor into nonblocking mode via `fcntl`.
///
/// Used for descriptors std cannot configure (the wakeup eventfd);
/// sockets go through `TcpStream::set_nonblocking`.
///
/// # Errors
///
/// The `fcntl` errno as [`io::Error`].
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: fcntl on a descriptor we own; no memory is passed.
    let flags = unsafe { fcntl(fd, F_GETFL, 0) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: as above.
    if unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// An epoll instance: register descriptors with a `u64` token, then
/// [`Epoll::wait`] for readiness. Level-triggered (the default), which
/// lets the loop stop reading or writing mid-buffer without losing the
/// wakeup.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Create a new epoll instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// The `epoll_create1` errno as [`io::Error`].
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: plain syscall, no pointers.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events: interest,
            token,
        };
        let event_ptr = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut event as *mut EpollEvent
        };
        // SAFETY: `event` outlives the call; the kernel copies it.
        if unsafe { epoll_ctl(self.fd, op, fd, event_ptr) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` with the given interest set and token.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` errno as [`io::Error`].
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Change the interest set of an already-registered descriptor.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` errno as [`io::Error`].
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregister a descriptor. Safe to call on one already closed by the
    /// kernel side; the error is reported but usually ignorable.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` errno as [`io::Error`].
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Block up to `timeout_ms` (-1 = forever) for readiness events,
    /// filling `events`. Returns how many entries are valid. A signal
    /// interruption reports zero events rather than an error.
    ///
    /// # Errors
    ///
    /// The `epoll_wait` errno as [`io::Error`] (except `EINTR`).
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: the kernel writes at most `events.len()` entries.
        let n = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len() as c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: closing a descriptor we own.
        unsafe { close(self.fd) };
    }
}

/// A nonblocking `eventfd` used to wake the event loop from other
/// threads (the broker's delivery notifier, federation link queues,
/// shutdown).
#[derive(Debug)]
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Create a nonblocking eventfd.
    ///
    /// # Errors
    ///
    /// The `eventfd`/`fcntl` errno as [`io::Error`].
    pub fn new() -> io::Result<EventFd> {
        // SAFETY: plain syscall. Flags are set separately via fcntl so
        // this works on kernels predating EFD_NONBLOCK too.
        let fd = unsafe { eventfd(0, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let this = EventFd { fd };
        set_nonblocking(fd)?;
        Ok(this)
    }

    /// The raw descriptor, for epoll registration.
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Wake the loop: add 1 to the eventfd counter. A full counter
    /// (`EAGAIN`) already guarantees a pending wakeup, so errors are
    /// ignored.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writing 8 bytes from a stack value.
        unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Consume all pending wakeups so level-triggered epoll goes quiet.
    pub fn drain(&self) {
        let mut buf = 0u64;
        // SAFETY: reading 8 bytes into a stack value; nonblocking, so a
        // drained counter returns EAGAIN immediately.
        unsafe { read(self.fd, (&mut buf as *mut u64).cast(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: closing a descriptor we own.
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::os::unix::io::AsRawFd;

    #[test]
    fn eventfd_wakes_and_drains() {
        let epoll = Epoll::new().expect("epoll");
        let wakeup = EventFd::new().expect("eventfd");
        epoll
            .add(wakeup.raw_fd(), EPOLLIN, 7)
            .expect("register eventfd");
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(epoll.wait(&mut events, 0).expect("idle wait"), 0);
        wakeup.wake();
        wakeup.wake();
        let n = epoll.wait(&mut events, 1000).expect("wake wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].data(), 7);
        assert!(events[0].readiness() & EPOLLIN != 0);
        wakeup.drain();
        assert_eq!(epoll.wait(&mut events, 0).expect("drained wait"), 0);
    }

    #[test]
    fn socket_readiness_is_reported() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let epoll = Epoll::new().expect("epoll");
        epoll
            .add(listener.as_raw_fd(), EPOLLIN, 1)
            .expect("register listener");
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(epoll.wait(&mut events, 0).expect("idle"), 0);
        let mut client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = epoll.wait(&mut events, 2000).expect("accept readiness");
        assert_eq!(n, 1);
        assert_eq!(events[0].data(), 1);
        let (server_side, _) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).expect("nonblocking");
        epoll
            .add(server_side.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 2)
            .expect("register conn");
        client.write_all(b"ping").expect("write");
        let n = epoll.wait(&mut events, 2000).expect("read readiness");
        assert!(n >= 1 && events[..n].iter().any(|e| e.data() == 2));
        epoll.delete(server_side.as_raw_fd()).expect("deregister");
    }
}
