//! The server-side automatic-subscription engine — the paper's headline
//! loop run inside the daemon.
//!
//! A client enrolls a user with [`Request::AutoSubscribe`]; from then on
//! the daemon mines that user's uploaded clicks (the same
//! `DurableClickStore` that serves `UploadClicks`) with a
//! [`reef_core::AutoSubEngine`] and installs the derived filters as
//! *real broker subscriptions owned by the enrolling connection* — the
//! user starts receiving matching events without ever sending a
//! `Subscribe`. A background refresh task re-observes new clicks on a
//! fixed cadence and applies the engine's decay policy, so interests
//! that stop being reinforced are retired from the broker instead of
//! accumulating forever. Every installed/retired delta is pushed to the
//! owning connection as an unsolicited [`ServerFrame::FeedChanged`]
//! notice.
//!
//! The module splits in two:
//!
//! * [`AutosubOptions`] — the public knob set, configured through
//!   [`crate::server::BrokerServerBuilder::autosub`] and the matching
//!   `reefd --autosub*` flags;
//! * `AutosubRuntime` — the crate-private engine registry shared by
//!   both transports: `handle_request` enrolls/unenrolls through it, the
//!   refresh thread drives it, and the delivery paths drain its pending
//!   `FeedChange` notices.
//!
//! [`Request::AutoSubscribe`]: crate::protocol::Request::AutoSubscribe
//! [`ServerFrame::FeedChanged`]: crate::protocol::ServerFrame::FeedChanged

use crate::protocol::{AutoSubEntry, AutoSubPolicy, AutoSubReceipt, FeedChange};
use crate::server::ServerCore;
use crate::stats::AutosubGauges;
use parking_lot::Mutex;
use reef_core::{AutoSubConfig, AutoSubEngine, DerivedFilter};
use reef_pubsub::{Clock, Filter, SubscriberId, SubscriptionId, SystemClock};
use reef_simweb::UserId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default cadence of the background refresh task.
const DEFAULT_REFRESH_INTERVAL: Duration = Duration::from_millis(1000);

/// Configuration of the daemon's automatic-subscription engine.
///
/// The library default is *enabled* with the engine defaults, so
/// embedded servers and tests get working auto-subscriptions out of the
/// box; the `reefd` binary keeps the feature behind an explicit
/// `--autosub` flag.
#[derive(Debug, Clone)]
pub struct AutosubOptions {
    enabled: bool,
    default_policy: AutoSubPolicy,
    refresh_interval: Duration,
    clock: Arc<dyn Clock>,
}

impl Default for AutosubOptions {
    fn default() -> Self {
        AutosubOptions {
            enabled: true,
            default_policy: AutoSubPolicy::default(),
            refresh_interval: DEFAULT_REFRESH_INTERVAL,
            clock: SystemClock::shared(),
        }
    }
}

impl AutosubOptions {
    /// Enable or disable the subsystem. When disabled, `AutoSubscribe`
    /// requests are refused with an error reply and no refresh thread is
    /// spawned.
    pub fn enabled(mut self, enabled: bool) -> Self {
        self.enabled = enabled;
        self
    }

    /// Policy applied to enrollments whose `AutoSubscribe` carried no
    /// explicit policy (recommender mode, filter cap, decay half-life,
    /// score floor).
    pub fn default_policy(mut self, policy: AutoSubPolicy) -> Self {
        self.default_policy = policy;
        self
    }

    /// How often the background task re-observes uploaded clicks, applies
    /// decay and installs/retires derived subscriptions (default 1 s).
    pub fn refresh_interval(mut self, interval: Duration) -> Self {
        self.refresh_interval = interval;
        self
    }

    /// Whether the subsystem is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The configured refresh cadence.
    pub fn interval(&self) -> Duration {
        self.refresh_interval
    }

    /// Clock the engine's decay math reads "now" from. Defaults to
    /// [`SystemClock`]; deterministic tests inject a
    /// [`reef_pubsub::ManualClock`] so interest decay is a pure function
    /// of the schedule driving it.
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }
}

/// One enrolled `(connection, user)` pair: the per-user engine plus the
/// broker subscription ids backing its currently-installed filters.
struct Enrollment {
    user: UserId,
    subscriber: SubscriberId,
    engine: AutoSubEngine,
    /// Derived filter → the broker subscription realizing it. Keyed by
    /// the filter's debug rendering, which is deterministic for the
    /// structurally identical filters the engine re-derives.
    installed: HashMap<String, SubscriptionId>,
}

/// The shared registry of enrollments, driven by request handlers (both
/// transports), the refresh thread and connection teardown.
pub(crate) struct AutosubRuntime {
    options: AutosubOptions,
    state: Mutex<HashMap<(SubscriberId, u32), Enrollment>>,
    /// `FeedChange` notices queued per connection, drained by the
    /// transport delivery paths.
    notices: Mutex<HashMap<SubscriberId, Vec<FeedChange>>>,
    derived_total: AtomicU64,
    retired_total: AtomicU64,
    last_refresh_us: AtomicU64,
}

impl std::fmt::Debug for AutosubRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AutosubRuntime")
            .field("enabled", &self.options.enabled)
            .field("enrollments", &self.state.lock().len())
            .finish()
    }
}

/// Map a wire policy onto the engine configuration it asks for.
fn config_of(policy: &AutoSubPolicy) -> AutoSubConfig {
    AutoSubConfig {
        mode: policy.recommender,
        max_filters: policy.max_filters as usize,
        half_life_secs: policy.half_life_secs,
        min_score: policy.min_score,
        ..AutoSubConfig::default()
    }
}

fn entry_of(derived: &DerivedFilter) -> AutoSubEntry {
    AutoSubEntry {
        filter: derived.filter.clone(),
        reason: derived.reason.clone(),
        score: derived.score,
    }
}

fn filter_key(filter: &Filter) -> String {
    format!("{filter:?}")
}

impl AutosubRuntime {
    pub(crate) fn new(options: AutosubOptions) -> AutosubRuntime {
        AutosubRuntime {
            options,
            state: Mutex::new(HashMap::new()),
            notices: Mutex::new(HashMap::new()),
            derived_total: AtomicU64::new(0),
            retired_total: AtomicU64::new(0),
            last_refresh_us: AtomicU64::new(0),
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.options.enabled
    }

    pub(crate) fn refresh_interval(&self) -> Duration {
        self.options.refresh_interval
    }

    /// The engine's "now" in seconds, read off the injected clock.
    fn now_secs(&self) -> f64 {
        self.options.clock.now_ms() as f64 / 1000.0
    }

    /// Enroll `user` on behalf of `subscriber`'s connection, observing
    /// the already-uploaded click history immediately so the receipt
    /// reflects what the engine derives right now. Re-enrolling replaces
    /// the previous enrollment (its installed filters are retired first,
    /// then re-derived from scratch under the new policy).
    pub(crate) fn enroll(
        &self,
        core: &ServerCore,
        subscriber: SubscriberId,
        user: UserId,
        policy: Option<AutoSubPolicy>,
    ) -> Result<AutoSubReceipt, String> {
        if !self.options.enabled {
            return Err("automatic subscriptions are disabled on this daemon".into());
        }
        let policy = policy.unwrap_or_else(|| self.options.default_policy.clone());
        let mut state = self.state.lock();
        if let Some(mut old) = state.remove(&(subscriber, user.0)) {
            self.retire_enrollment(core, &mut old);
        }
        let mut enrollment = Enrollment {
            user,
            subscriber,
            engine: AutoSubEngine::new(user, config_of(&policy)),
            installed: HashMap::new(),
        };
        let now = self.now_secs();
        let diff = {
            let clicks = core.clicks.lock();
            enrollment.engine.observe(clicks.clicks_of(user), now)
        };
        // The receipt itself carries the initial state, so enrollment
        // queues no FeedChange notice.
        let _ = self.apply_diff(core, &mut enrollment, &diff);
        let entries: Vec<AutoSubEntry> = enrollment.engine.active().iter().map(entry_of).collect();
        state.insert((subscriber, user.0), enrollment);
        let (users, active) = Self::tally(&state);
        drop(state);
        self.record_gauges(core, users, active);
        Ok(AutoSubReceipt { user, entries })
    }

    /// Drop `user`'s enrollment on `subscriber`'s connection, retiring
    /// every engine-installed subscription from the broker. Idempotent:
    /// unenrolling an unknown user answers with an empty receipt.
    pub(crate) fn unenroll(
        &self,
        core: &ServerCore,
        subscriber: SubscriberId,
        user: UserId,
    ) -> Result<AutoSubReceipt, String> {
        if !self.options.enabled {
            return Err("automatic subscriptions are disabled on this daemon".into());
        }
        let mut state = self.state.lock();
        let entries = match state.remove(&(subscriber, user.0)) {
            Some(mut enrollment) => self.retire_enrollment(core, &mut enrollment),
            None => Vec::new(),
        };
        let (users, active) = Self::tally(&state);
        drop(state);
        self.record_gauges(core, users, active);
        Ok(AutoSubReceipt { user, entries })
    }

    /// Connection teardown: drop every enrollment owned by `subscriber`
    /// and its undelivered notices. Runs before the broker subscriber is
    /// deregistered, so the routing core sees a withdrawal for each
    /// engine-installed subscription just like manually-placed ones.
    pub(crate) fn drop_subscriber(&self, core: &ServerCore, subscriber: SubscriberId) {
        self.notices.lock().remove(&subscriber);
        let mut state = self.state.lock();
        let keys: Vec<(SubscriberId, u32)> = state
            .keys()
            .filter(|(owner, _)| *owner == subscriber)
            .copied()
            .collect();
        if keys.is_empty() {
            return;
        }
        for key in keys {
            if let Some(mut enrollment) = state.remove(&key) {
                self.retire_enrollment(core, &mut enrollment);
            }
        }
        let (users, active) = Self::tally(&state);
        drop(state);
        self.record_gauges(core, users, active);
    }

    /// One refresh cycle: re-observe every enrollment over its user's
    /// current click history, apply decay, install/retire broker
    /// subscriptions, queue `FeedChange` notices and refresh the gauges.
    pub(crate) fn refresh(&self, core: &ServerCore) {
        if !self.options.enabled {
            return;
        }
        let started = Instant::now();
        let now = self.now_secs();
        let mut changes: Vec<(SubscriberId, FeedChange)> = Vec::new();
        let mut state = self.state.lock();
        for enrollment in state.values_mut() {
            let diff = {
                let clicks = core.clicks.lock();
                enrollment
                    .engine
                    .observe(clicks.clicks_of(enrollment.user), now)
            };
            if let Some(change) = self.apply_diff(core, enrollment, &diff) {
                changes.push((enrollment.subscriber, change));
            }
        }
        let (users, active) = Self::tally(&state);
        drop(state);
        if !changes.is_empty() {
            let mut notices = self.notices.lock();
            for (subscriber, change) in changes {
                notices.entry(subscriber).or_default().push(change);
            }
        }
        self.last_refresh_us
            .store(started.elapsed().as_micros() as u64, Ordering::Relaxed);
        self.record_gauges(core, users, active);
    }

    /// Drain the queued `FeedChange` notices for one connection (called
    /// from the transport delivery paths).
    pub(crate) fn take_notices(&self, subscriber: SubscriberId) -> Vec<FeedChange> {
        self.notices.lock().remove(&subscriber).unwrap_or_default()
    }

    /// Cheap emptiness probe so the epoll loop skips the per-connection
    /// drain on quiet iterations.
    #[cfg(target_os = "linux")]
    pub(crate) fn has_notices(&self) -> bool {
        !self.notices.lock().is_empty()
    }

    /// Install `diff.installed` as broker subscriptions and retire
    /// `diff.retired` from the broker and routing core, returning the
    /// notice describing what actually changed (None when nothing did).
    fn apply_diff(
        &self,
        core: &ServerCore,
        enrollment: &mut Enrollment,
        diff: &reef_core::AutoSubDiff,
    ) -> Option<FeedChange> {
        if diff.is_empty() {
            return None;
        }
        let mut installed = Vec::new();
        for derived in &diff.installed {
            match core
                .broker
                .subscribe(enrollment.subscriber, derived.filter.clone())
            {
                Ok(id) => {
                    core.federation.local_subscribe(id, derived.filter.clone());
                    enrollment.installed.insert(filter_key(&derived.filter), id);
                    self.derived_total.fetch_add(1, Ordering::Relaxed);
                    installed.push(entry_of(derived));
                }
                Err(_) => {
                    // The subscriber is gone (connection raced away) or
                    // the broker refused the filter; count it and move on.
                    core.stats.record_error();
                }
            }
        }
        let mut retired = Vec::new();
        for derived in &diff.retired {
            if let Some(id) = enrollment.installed.remove(&filter_key(&derived.filter)) {
                let _ = core.broker.unsubscribe(id);
                core.federation.local_unsubscribe(id);
                self.retired_total.fetch_add(1, Ordering::Relaxed);
                retired.push(entry_of(derived));
            }
        }
        if installed.is_empty() && retired.is_empty() {
            None
        } else {
            Some(FeedChange {
                user: enrollment.user,
                installed,
                retired,
            })
        }
    }

    /// Retire every installed subscription of one enrollment, reporting
    /// what was active (strongest first, the engine's ordering).
    fn retire_enrollment(
        &self,
        core: &ServerCore,
        enrollment: &mut Enrollment,
    ) -> Vec<AutoSubEntry> {
        let entries: Vec<AutoSubEntry> = enrollment
            .engine
            .retire_all()
            .iter()
            .map(entry_of)
            .collect();
        for (_, id) in enrollment.installed.drain() {
            let _ = core.broker.unsubscribe(id);
            core.federation.local_unsubscribe(id);
            self.retired_total.fetch_add(1, Ordering::Relaxed);
        }
        entries
    }

    fn tally(state: &HashMap<(SubscriberId, u32), Enrollment>) -> (u64, u64) {
        let users = state.len() as u64;
        let active = state
            .values()
            .map(|enrollment| enrollment.installed.len() as u64)
            .sum();
        (users, active)
    }

    fn record_gauges(&self, core: &ServerCore, users: u64, active: u64) {
        core.stats.record_autosub(&AutosubGauges {
            users,
            active,
            derived: self.derived_total.load(Ordering::Relaxed),
            retired: self.retired_total.load(Ordering::Relaxed),
            last_refresh_us: self.last_refresh_us.load(Ordering::Relaxed),
        });
    }
}
