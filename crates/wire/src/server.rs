//! `BrokerServer`: the TCP face of a [`reef_pubsub::Broker`], with two
//! interchangeable cores behind one wire protocol ([`TransportKind`]).
//!
//! **Epoll (Linux, the default).** A handoff accept loop plus N sharded
//! readiness loops ([`BrokerServerBuilder::loop_threads`], default =
//! available cores), each owning a slice of the sockets: nonblocking
//! I/O, incremental frame reassembly, per-connection outbound buffers
//! that coalesce delivery bursts into single writes. Federation peer
//! links are pinned to shard 0. See the `event_loop` module for the
//! full design.
//!
//! **Threads.** One accept thread hands each connection to a dedicated
//! **reader thread** (negotiates the connection's codec from the first
//! frame's version byte, parses request frames, executes them against
//! the shared broker, writes correlation-id-echoing replies) and a
//! dedicated **delivery pump** (parks on the connection's subscriber
//! queue and streams matching events out as [`ServerFrame::Deliver`]
//! frames). Replies and deliveries share the socket through a
//! per-connection write lock, so each frame goes out whole.
//!
//! Both cores execute requests through one shared request-handling core,
//! so protocol semantics cannot drift between them.
//!
//! # Federation
//!
//! The server also speaks broker-to-broker: a connection whose first
//! request is [`Request::PeerHello`] is *upgraded* into a peer link of the
//! server's [`Federation`] — the sans-io [`reef_pubsub::BrokerNode`]
//! routing core driven over TCP. Outbound peer links are dialed at startup
//! from [`BrokerServerBuilder::peer`] addresses. Local subscriptions are
//! advertised to peers (covering-pruned), and events forwarded both ways.
//!
//! # Backpressure
//!
//! The delivery path is bounded end to end: the broker's per-subscriber
//! queues can be capped ([`BrokerServerBuilder::queue_capacity`]) with a
//! selectable overflow policy, and every socket carries a write timeout
//! ([`BrokerServerBuilder::write_timeout`]) so one stalled consumer costs
//! at most `queue capacity × write timeout` before its connection is
//! dropped. Deliveries lost to a dead or timed-out socket are counted per
//! connection and in the aggregate [`WireStats`].
//!
//! Shutdown is cooperative: [`BrokerServer::shutdown`] raises a flag, pokes
//! the accept loop with a loopback connection, closes every live socket
//! (which unblocks the reader threads) and joins everything.

use crate::autosub::{AutosubOptions, AutosubRuntime};
use crate::codec::{CodecKind, WireCodec};
use crate::error::WireError;
use crate::federation::{Federation, FederationConfig};
use crate::frame::Frame;
use crate::protocol::{Request, Response, ServerFrame};
use crate::stats::{
    ConnectionStatsSnapshot, FederationStatsSnapshot, PeerStatsSnapshot, WireStats,
    WireStatsSnapshot,
};
use parking_lot::Mutex;
use reef_attention::{DurableClickStore, PersistConfig};
use reef_pubsub::{
    Broker, Clock, NodeId, OverflowPolicy, SubscriberHandle, SubscriberId, SubscriptionId,
    SystemClock,
};
use std::collections::HashSet;
use std::io::BufReader;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the delivery pump parks on an idle subscriber queue before
/// re-checking the shutdown and connection flags.
const PUMP_PARK: Duration = Duration::from_millis(25);

/// Default socket write timeout on delivery and peer paths.
const DEFAULT_WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// How often and how long startup retries dialing a configured peer that
/// is not accepting connections yet.
const PEER_DIAL_ATTEMPTS: u32 = 25;
const PEER_DIAL_DELAY: Duration = Duration::from_millis(100);

/// Which server core moves the bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Two OS threads per connection (reader + delivery pump) plus two
    /// per peer link. Simple and portable; caps out at hundreds of
    /// concurrent subscribers.
    Threads,
    /// A handoff accept loop plus N sharded epoll readiness loops
    /// (Linux only), each owning a slice of the client sockets; peer
    /// links are pinned to shard 0. Thread count is fixed however many
    /// connections are live, nonblocking sockets, per-connection
    /// outbound buffers that coalesce deliveries.
    Epoll,
}

impl Default for TransportKind {
    /// Epoll where it exists (Linux), threads elsewhere.
    fn default() -> Self {
        if cfg!(target_os = "linux") {
            TransportKind::Epoll
        } else {
            TransportKind::Threads
        }
    }
}

impl TransportKind {
    /// Parse the CLI spelling used by `reefd --transport`
    /// (`threads` | `epoll`).
    pub fn parse(raw: &str) -> Option<TransportKind> {
        match raw {
            "threads" | "thread" => Some(TransportKind::Threads),
            "epoll" | "event-loop" => Some(TransportKind::Epoll),
            _ => None,
        }
    }

    /// Human-readable name (`threads` / `epoll`).
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Threads => "threads",
            TransportKind::Epoll => "epoll",
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configures and builds a [`BrokerServer`].
#[derive(Debug, Default)]
pub struct BrokerServerBuilder {
    broker: Option<Arc<Broker>>,
    name: Option<String>,
    queue_capacity: Option<usize>,
    overflow: Option<OverflowPolicy>,
    peers: Vec<String>,
    covering: Option<bool>,
    peer_queue_capacity: Option<usize>,
    write_timeout: Option<Duration>,
    codec: Option<CodecKind>,
    peer_retry: Option<bool>,
    mesh: Option<bool>,
    route_refresh: Option<Duration>,
    peer_timeout: Option<Option<Duration>>,
    transport: Option<TransportKind>,
    loop_threads: Option<usize>,
    data_dir: Option<PathBuf>,
    wal_segment_bytes: Option<u64>,
    snapshot_every: Option<u64>,
    autosub: Option<AutosubOptions>,
    max_frame_bytes: Option<usize>,
    clock: Option<Arc<dyn Clock>>,
}

impl BrokerServerBuilder {
    /// Serve an existing (possibly schema-validating, bounded-queue)
    /// broker instead of a fresh default one. Overrides
    /// [`BrokerServerBuilder::queue_capacity`] and
    /// [`BrokerServerBuilder::overflow`].
    pub fn broker(mut self, broker: Arc<Broker>) -> Self {
        self.broker = Some(broker);
        self
    }

    /// Server name reported in `Hello` responses and peer handshakes.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Bound each subscriber's delivery queue to `capacity` events
    /// (ignored when an explicit broker is supplied).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity);
        self
    }

    /// Policy applied when a bounded delivery queue overflows (ignored
    /// when an explicit broker is supplied).
    pub fn overflow(mut self, policy: OverflowPolicy) -> Self {
        self.overflow = Some(policy);
        self
    }

    /// Federate with the broker at `addr` (repeatable). The address is
    /// dialed at startup, with retries while the peer comes up.
    pub fn peer(mut self, addr: impl Into<String>) -> Self {
        self.peers.push(addr.into());
        self
    }

    /// Enable or disable covering-based advertisement pruning toward
    /// peers (default on).
    pub fn covering(mut self, covering: bool) -> Self {
        self.covering = Some(covering);
        self
    }

    /// Bound each peer link's outgoing event queue (default 1024).
    pub fn peer_queue_capacity(mut self, capacity: usize) -> Self {
        self.peer_queue_capacity = Some(capacity);
        self
    }

    /// Socket write timeout on delivery and peer paths (default 5 s).
    pub fn write_timeout(mut self, timeout: Duration) -> Self {
        self.write_timeout = Some(timeout);
        self
    }

    /// Codec spoken when *dialing* peers (default binary/v2). Inbound
    /// connections — clients and peers alike — always negotiate their
    /// own codec via the first frame's version byte.
    pub fn codec(mut self, codec: CodecKind) -> Self {
        self.codec = Some(codec);
        self
    }

    /// Re-dial dead *dialed* peer links with capped exponential backoff
    /// (default off). The `PeerHello` handshake — codec negotiation
    /// included — is re-run on every reconnect.
    pub fn peer_retry(mut self, retry: bool) -> Self {
        self.peer_retry = Some(retry);
        self
    }

    /// Route in mesh (path-vector) mode instead of tree mode (default
    /// off). A mesh overlay may contain cycles and redundant links:
    /// advertisements carry broker-id paths, duplicate events are
    /// suppressed by a bounded seen-cache, and a dead link fails over
    /// to the best surviving alternate path. Every federated broker
    /// must agree on this flag; covering-based pruning is disabled in
    /// mesh mode.
    pub fn mesh(mut self, mesh: bool) -> Self {
        self.mesh = Some(mesh);
        self
    }

    /// Interval between periodic full route re-advertisements in mesh
    /// mode (default 5 s); `Duration::ZERO` disables the refresh.
    /// Ignored in tree mode.
    pub fn route_refresh(mut self, interval: Duration) -> Self {
        self.route_refresh = Some(interval);
        self
    }

    /// Keepalive deadline on peer links (default 10 s): an idle link is
    /// pinged at a third of this, and one silent past the full deadline
    /// is torn down (mesh mode then promotes alternate routes). `None`
    /// disables keepalive.
    pub fn peer_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.peer_timeout = Some(timeout);
        self
    }

    /// Server core: [`TransportKind::Epoll`] (the default on Linux) or
    /// [`TransportKind::Threads`]. Both speak the identical wire
    /// protocol; the choice is invisible to clients and peers.
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Number of sharded epoll readiness loops (default: available
    /// cores). Accepted connections are spread across the shards by fd
    /// hash; federation peer links always live on shard 0. Clamped to at
    /// least 1; ignored by [`TransportKind::Threads`].
    pub fn loop_threads(mut self, threads: usize) -> Self {
        self.loop_threads = Some(threads);
        self
    }

    /// Persist the click store under `dir`: uploads are appended to a
    /// segmented, checksummed WAL before they are acknowledged, and a
    /// restart on the same directory recovers them. Without a data dir
    /// the store is in-memory and a restart starts empty.
    pub fn data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.data_dir = Some(dir.into());
        self
    }

    /// Rotate WAL segments past this many bytes (default 8 MiB; only
    /// meaningful with [`BrokerServerBuilder::data_dir`]).
    pub fn wal_segment_bytes(mut self, bytes: u64) -> Self {
        self.wal_segment_bytes = Some(bytes);
        self
    }

    /// Snapshot + compact the click store every `batches` ingested
    /// upload batches; `0` disables snapshots (default 256; only
    /// meaningful with [`BrokerServerBuilder::data_dir`]).
    ///
    /// The snapshot is written synchronously inside the triggering
    /// upload request, so at very large store sizes a low cadence
    /// briefly stalls request handling; see ROADMAP for the
    /// background-snapshot follow-on.
    pub fn snapshot_every(mut self, batches: u64) -> Self {
        self.snapshot_every = Some(batches);
        self
    }

    /// Configure the automatic-subscription subsystem (default: enabled
    /// with [`AutosubOptions::default`]). The `reefd` binary flips the
    /// default off and re-enables it with `--autosub`.
    pub fn autosub(mut self, options: AutosubOptions) -> Self {
        self.autosub = Some(options);
        self
    }

    /// Largest frame accepted from any connection — client or peer —
    /// before the connection is dropped (default 16 MiB, the protocol
    /// ceiling). The length prefix is checked against this cap *before*
    /// any buffer is reserved, so a hostile 4 GiB length costs nothing.
    /// Values above the protocol ceiling are clamped to it.
    pub fn max_frame_bytes(mut self, bytes: usize) -> Self {
        self.max_frame_bytes = Some(bytes);
        self
    }

    /// Clock driving peer keepalive, mesh route refresh and autosub
    /// decay (default: wall time). Deterministic tests inject a
    /// [`reef_pubsub::ManualClock`] and advance virtual time explicitly.
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Bind `addr` and start serving.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the address cannot be bound or a configured
    /// peer stays unreachable.
    pub fn bind(self, addr: impl ToSocketAddrs) -> Result<BrokerServer, WireError> {
        let broker = match self.broker {
            Some(broker) => broker,
            None => {
                let mut builder = Broker::builder();
                if let Some(capacity) = self.queue_capacity {
                    builder = builder.queue_capacity(capacity);
                }
                builder = builder.overflow(self.overflow.unwrap_or_default());
                Arc::new(builder.build())
            }
        };
        let clicks = match self.data_dir {
            Some(dir) => {
                let mut cfg = PersistConfig::new(dir);
                if let Some(bytes) = self.wal_segment_bytes {
                    cfg.segment_bytes = bytes;
                }
                if let Some(batches) = self.snapshot_every {
                    cfg.snapshot_every = batches;
                }
                DurableClickStore::open(cfg)?
            }
            None => DurableClickStore::in_memory(),
        };
        BrokerServer::start(
            addr,
            broker,
            clicks,
            self.name
                .unwrap_or_else(|| format!("reefd/{}", env!("CARGO_PKG_VERSION"))),
            self.peers,
            self.covering.unwrap_or(true),
            self.peer_queue_capacity.unwrap_or(1024),
            self.write_timeout.unwrap_or(DEFAULT_WRITE_TIMEOUT),
            self.codec.unwrap_or_default(),
            self.peer_retry.unwrap_or(false),
            self.mesh.unwrap_or(false),
            self.route_refresh.unwrap_or(Duration::from_secs(5)),
            self.peer_timeout.unwrap_or(Some(Duration::from_secs(10))),
            self.transport.unwrap_or_default(),
            self.loop_threads,
            self.autosub.unwrap_or_default(),
            self.max_frame_bytes
                .unwrap_or(crate::frame::MAX_FRAME_LEN)
                .min(crate::frame::MAX_FRAME_LEN),
            self.clock.unwrap_or_else(SystemClock::shared),
        )
    }
}

/// State shared with a single connection's two threads (threaded
/// transport) or with the event loop (epoll transport). Identity and
/// counters live here so [`BrokerServer::connection_stats`] reads one
/// registry whichever core is moving the bytes.
pub(crate) struct Connection {
    pub(crate) peer: SocketAddr,
    pub(crate) client_name: Mutex<String>,
    pub(crate) subscriber: SubscriberId,
    /// Write half used by the threaded transport's reader and pump
    /// threads; `None` on the epoll transport (the loop writes through
    /// its own outbound buffers), which saves one fd per connection.
    writer: Mutex<Option<TcpStream>>,
    /// Clone of the same socket used only for `shutdown`, so closing never
    /// has to wait on the writer mutex (a pump blocked mid-write holds it).
    /// `None` on the epoll transport: the loop owns the socket, shuts it
    /// down itself, and the saved fd-clone is what lets one process hold
    /// tens of thousands of connections under a 20k descriptor limit.
    control: Option<TcpStream>,
    pub(crate) stats: WireStats,
    pub(crate) closed: AtomicBool,
    /// Set when the connection turned into a federation peer link; the
    /// delivery pump bows out and the link's threads own the socket.
    pub(crate) upgraded: AtomicBool,
    /// Frame version byte of the codec negotiated by the connection's
    /// first frame; 0 until then.
    pub(crate) codec_version: AtomicU8,
    /// Id of the event-loop shard serving this connection; `None` on the
    /// threaded transport.
    pub(crate) loop_id: Option<u32>,
}

impl Connection {
    /// Create the shared state for one accepted socket. `writer` and
    /// `control` are fd-clones of the transport's stream; the epoll
    /// transport passes neither (the loop owns the socket outright).
    pub(crate) fn new(
        peer: SocketAddr,
        subscriber: SubscriberId,
        writer: Option<TcpStream>,
        control: Option<TcpStream>,
        loop_id: Option<u32>,
    ) -> Connection {
        Connection {
            peer,
            client_name: Mutex::new(String::new()),
            subscriber,
            writer: Mutex::new(writer),
            control,
            stats: WireStats::new(),
            closed: AtomicBool::new(false),
            upgraded: AtomicBool::new(false),
            codec_version: AtomicU8::new(0),
            loop_id,
        }
    }

    /// The negotiated codec. Before negotiation (no frame seen yet — so
    /// nothing has been sent either) this defaults to JSON, the one
    /// encoding every client generation can read.
    pub(crate) fn codec(&self) -> &'static dyn WireCodec {
        CodecKind::for_version(self.codec_version.load(Ordering::SeqCst))
            .unwrap_or(CodecKind::Json)
            .codec()
    }

    /// Human-readable name of the negotiated codec, `-` before the first
    /// frame.
    fn codec_name(&self) -> &'static str {
        match CodecKind::for_version(self.codec_version.load(Ordering::SeqCst)) {
            Some(kind) => kind.name(),
            None => "-",
        }
    }

    /// Encode a reply with the negotiated codec, frame and write it,
    /// updating both counter sets (threaded transport only; the event
    /// loop writes through its outbound buffers).
    fn send(&self, msg: &ServerFrame, aggregate: &WireStats) -> Result<(), WireError> {
        let frame = self.codec().encode_server(msg)?;
        let mut writer = self.writer.lock();
        let writer = writer.as_mut().ok_or(WireError::Closed)?;
        let written = frame.write_to(writer)?;
        self.stats.record_frame_out(frame.version, written);
        aggregate.record_frame_out(frame.version, written);
        Ok(())
    }

    /// Encode one delivery straight from the shared event and write it.
    /// The borrow matters: fan-out to N subscribers encodes from one
    /// `Arc<PublishedEvent>` instead of deep-cloning the event N times.
    fn send_deliver(
        &self,
        event: &reef_pubsub::PublishedEvent,
        aggregate: &WireStats,
    ) -> Result<(), WireError> {
        let frame = self.codec().encode_deliver(event)?;
        let mut writer = self.writer.lock();
        let writer = writer.as_mut().ok_or(WireError::Closed)?;
        // Once the connection upgraded to a peer link, the socket speaks
        // `PeerMsg` frames: a straggling delivery (the pump may have
        // dequeued one just before the upgrade) would corrupt the peer
        // stream, so drop it here, under the same lock that orders the
        // writes.
        if self.upgraded.load(Ordering::SeqCst) {
            return Ok(());
        }
        let written = frame.write_to(writer)?;
        self.stats.record_frame_out(frame.version, written);
        aggregate.record_frame_out(frame.version, written);
        self.stats.record_delivery();
        aggregate.record_delivery();
        Ok(())
    }

    pub(crate) fn close_socket(&self) {
        self.closed.store(true, Ordering::SeqCst);
        if let Some(control) = &self.control {
            let _ = control.shutdown(Shutdown::Both);
        }
    }
}

/// A TCP publish-subscribe broker daemon.
///
/// # Examples
///
/// ```
/// use reef_pubsub::{Event, Filter, Op};
/// use reef_wire::{BrokerServer, Client};
///
/// let server = BrokerServer::bind("127.0.0.1:0").unwrap();
/// let subscriber = Client::connect(server.local_addr()).unwrap();
/// subscriber.subscribe(Filter::new().and("n", Op::Gt, 1)).unwrap();
/// let publisher = Client::connect(server.local_addr()).unwrap();
/// publisher.publish(Event::builder().attr("n", 2).build()).unwrap();
/// let delivery = subscriber.recv_delivery(std::time::Duration::from_secs(5));
/// assert!(delivery.is_some());
/// server.shutdown();
/// ```
pub struct BrokerServer {
    core: Arc<ServerCore>,
    local_addr: SocketAddr,
    transport: TransportKind,
    /// Accept thread (threads transport) or the accept + shard threads
    /// (epoll).
    main_threads: Vec<JoinHandle<()>>,
    /// Wakes the event loop so it observes the shutdown flag (epoll only).
    loop_control: Option<Arc<dyn LoopControl>>,
    /// The autosub refresh thread; `None` when the subsystem is disabled.
    autosub_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// Handle the server keeps to its event loop: enough to wake it at
/// shutdown. Implemented by the loop's shared state.
pub(crate) trait LoopControl: Send + Sync {
    /// Force the loop out of `epoll_wait` so it re-checks its flags.
    fn wake_loop(&self);
}

/// Everything both transports share: the broker, the federation layer,
/// the click store, the connection registry, the aggregate counters and
/// the request semantics. The threaded reader threads and the epoll
/// event loop both execute requests through [`ServerCore::handle_request`],
/// so the two cores cannot drift apart behaviorally.
pub(crate) struct ServerCore {
    pub(crate) broker: Arc<Broker>,
    pub(crate) federation: Arc<Federation>,
    pub(crate) clicks: Arc<Mutex<DurableClickStore>>,
    pub(crate) connections: Mutex<Vec<Arc<Connection>>>,
    pub(crate) stats: WireStats,
    pub(crate) shutdown: AtomicBool,
    pub(crate) name: String,
    pub(crate) write_timeout: Duration,
    pub(crate) autosub: AutosubRuntime,
    /// Largest frame accepted from any connection; length prefixes past
    /// this drop the connection before a buffer is reserved.
    pub(crate) max_frame: usize,
}

impl ServerCore {
    /// Execute one non-`PeerHello` request against the broker and
    /// federation. Transport-agnostic: the caller owns framing, codec
    /// negotiation and reply delivery. `request_wire_len` is the size of
    /// the request frame as it crossed the wire (header included), which
    /// upload receipts report back to the client.
    pub(crate) fn handle_request(
        &self,
        conn: &Connection,
        owned: &mut HashSet<SubscriptionId>,
        request: Request,
        request_wire_len: usize,
    ) -> Response {
        match request {
            Request::Hello { version, client } => {
                let negotiated = conn.codec_version.load(Ordering::SeqCst);
                if version != negotiated {
                    return Response::Error {
                        message: format!(
                            "Hello version field v{version} disagrees with the frame codec v{negotiated}"
                        ),
                    };
                }
                *conn.client_name.lock() = client;
                Response::Hello {
                    version: negotiated,
                    server: self.name.clone(),
                    subscriber: conn.subscriber.0,
                }
            }
            Request::Subscribe { filter } => {
                match self.broker.subscribe(conn.subscriber, filter.clone()) {
                    Ok(subscription) => {
                        owned.insert(subscription);
                        // Mirror into the routing core so the filter is
                        // advertised to (current and future) peers.
                        self.federation.local_subscribe(subscription, filter);
                        Response::Subscribed { subscription }
                    }
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                }
            }
            Request::Unsubscribe { subscription } => {
                if !owned.contains(&subscription) {
                    return Response::Error {
                        message: format!(
                            "subscription {subscription} is not owned by this connection"
                        ),
                    };
                }
                match self.broker.unsubscribe(subscription) {
                    Ok(filter) => {
                        owned.remove(&subscription);
                        self.federation.local_unsubscribe(subscription);
                        Response::Unsubscribed { filter }
                    }
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                }
            }
            Request::Publish { event } => {
                // Clone only when there are peers to forward to.
                let forward = if self.federation.peer_count() > 0 {
                    Some(event.clone())
                } else {
                    None
                };
                match self.broker.publish(event) {
                    Ok(outcome) => {
                        if let Some(event) = forward {
                            self.federation.local_publish(event, &outcome);
                        }
                        Response::Published {
                            id: outcome.id,
                            delivered: outcome.delivered as u64,
                            dropped: outcome.dropped as u64,
                        }
                    }
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                }
            }
            Request::UploadClicks { batch } => {
                let mut clicks = self.clicks.lock();
                // The WAL append happens (and is flushed) before the
                // receipt exists: an acknowledged upload is a durable
                // upload. A persistence failure refuses the batch.
                match clicks.ingest_upload_sized(batch, request_wire_len as u64) {
                    Ok(receipt) => {
                        self.stats.record_persist(&clicks.persist_stats());
                        Response::ClicksAccepted { receipt }
                    }
                    Err(e) => Response::Error {
                        message: format!("click store persistence failed: {e}"),
                    },
                }
            }
            Request::AutoSubscribe { user, policy } => {
                match self.autosub.enroll(self, conn.subscriber, user, policy) {
                    Ok(receipt) => Response::AutoSubscribed { receipt },
                    Err(message) => Response::Error { message },
                }
            }
            Request::AutoUnsubscribe { user } => {
                match self.autosub.unenroll(self, conn.subscriber, user) {
                    Ok(receipt) => Response::AutoUnsubscribed { receipt },
                    Err(message) => Response::Error { message },
                }
            }
            Request::Stats => {
                // Fold the broker-side snapshot-swap gauge into the wire
                // counters before the snapshot is taken.
                self.stats
                    .record_matcher_swaps(self.broker.snapshot_swaps());
                Response::Stats {
                    broker: self.broker.stats(),
                    wire: self.stats.snapshot(),
                    federation: self.federation.snapshot(),
                }
            }
            Request::Ping => Response::Pong,
            Request::Bye => Response::Bye,
            Request::PeerHello { .. } => unreachable!("intercepted by the transport"),
        }
    }

    /// Deregister a finished client connection: withdraw its
    /// subscriptions from the routing core, drop its broker subscriber
    /// and remove it from the registry.
    pub(crate) fn finish_connection(
        &self,
        conn: &Arc<Connection>,
        owned: &HashSet<SubscriptionId>,
    ) {
        conn.close_socket();
        // Engine-installed subscriptions first: each needs its own
        // routing-core withdrawal, and the broker deregistration below
        // would otherwise leave the autosub registry pointing at dead
        // subscription ids.
        self.autosub.drop_subscriber(self, conn.subscriber);
        for sub in owned {
            self.federation.local_unsubscribe(*sub);
        }
        let _ = self.broker.deregister(conn.subscriber);
        conn.stats.record_close();
        self.stats.record_close();
        self.connections.lock().retain(|c| !Arc::ptr_eq(c, conn));
    }
}

impl std::fmt::Debug for BrokerServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrokerServer")
            .field("local_addr", &self.local_addr)
            .field("transport", &self.transport)
            .field("connections", &self.core.connections.lock().len())
            .field("peers", &self.core.federation.peer_count())
            .finish()
    }
}

impl BrokerServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and serve a fresh
    /// default broker.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the address cannot be bound.
    pub fn bind(addr: impl ToSocketAddrs) -> Result<BrokerServer, WireError> {
        BrokerServerBuilder::default().bind(addr)
    }

    /// Start configuring a server.
    pub fn builder() -> BrokerServerBuilder {
        BrokerServerBuilder::default()
    }

    #[allow(clippy::too_many_arguments)]
    fn start(
        addr: impl ToSocketAddrs,
        broker: Arc<Broker>,
        clicks: DurableClickStore,
        name: String,
        peers: Vec<String>,
        covering: bool,
        peer_queue_capacity: usize,
        write_timeout: Duration,
        codec: CodecKind,
        peer_retry: bool,
        mesh: bool,
        route_refresh: Duration,
        peer_timeout: Option<Duration>,
        transport: TransportKind,
        loop_threads: Option<usize>,
        autosub: AutosubOptions,
        max_frame: usize,
        clock: Arc<dyn Clock>,
    ) -> Result<BrokerServer, WireError> {
        if transport == TransportKind::Epoll && !cfg!(target_os = "linux") {
            return Err(WireError::Protocol(
                "the epoll transport requires Linux; use TransportKind::Threads".into(),
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let broker_id = crate::federation::mint_broker_id(&name, local_addr.port() as u64);
        // Namespace event ids like subscription ids, so events forwarded
        // between federated daemons never collide on `EventId`. A
        // pre-used broker keeps its counter (the rebase only applies to
        // a fresh one).
        broker.namespace_event_ids((broker_id as u64) << 32);
        let federation = Federation::start(
            Arc::clone(&broker),
            broker_id,
            FederationConfig {
                name: name.clone(),
                covering,
                peer_queue_capacity,
                write_timeout,
                codec,
                peer_retry,
                event_loop: transport == TransportKind::Epoll,
                mesh,
                route_refresh,
                peer_timeout,
                clock: Arc::clone(&clock),
                max_frame,
            },
        );
        let stats = WireStats::new();
        // Surface what recovery found (clicks restored, torn bytes
        // truncated) from the first stats snapshot on.
        stats.record_persist(&clicks.persist_stats());
        let core = Arc::new(ServerCore {
            broker,
            federation,
            clicks: Arc::new(Mutex::new(clicks)),
            connections: Mutex::new(Vec::new()),
            stats,
            shutdown: AtomicBool::new(false),
            name,
            write_timeout,
            autosub: AutosubRuntime::new(autosub),
            max_frame,
        });
        let mut server = BrokerServer {
            core: Arc::clone(&core),
            local_addr,
            transport,
            main_threads: Vec::new(),
            loop_control: None,
            autosub_thread: spawn_autosub_refresh(&core),
            conn_threads: Arc::new(Mutex::new(Vec::new())),
        };
        match transport {
            TransportKind::Threads => {
                let accept = AcceptLoop {
                    listener,
                    core,
                    conn_threads: Arc::clone(&server.conn_threads),
                };
                server.main_threads.push(
                    std::thread::Builder::new()
                        .name("reefd-accept".into())
                        .spawn(move || accept.run())
                        .expect("spawn accept thread"),
                );
            }
            TransportKind::Epoll => {
                #[cfg(target_os = "linux")]
                {
                    let shards = loop_threads.unwrap_or_else(|| {
                        std::thread::available_parallelism()
                            .map(|n| n.get())
                            .unwrap_or(1)
                    });
                    let (threads, control) = crate::event_loop::spawn(listener, core, shards)?;
                    server.main_threads = threads;
                    server.loop_control = Some(control);
                }
                #[cfg(not(target_os = "linux"))]
                unreachable!("rejected above");
            }
        }
        for peer in &peers {
            server.core.federation.connect_peer_with_retry(
                peer,
                PEER_DIAL_ATTEMPTS,
                PEER_DIAL_DELAY,
            )?;
        }
        Ok(server)
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Which transport core is serving.
    pub fn transport(&self) -> TransportKind {
        self.transport
    }

    /// The broker being served.
    pub fn broker(&self) -> &Arc<Broker> {
        &self.core.broker
    }

    /// The federation layer: peer links and the sans-io routing core.
    pub fn federation(&self) -> &Arc<Federation> {
        &self.core.federation
    }

    /// Dial `addr` and add it as a federation peer at runtime.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the peer is unreachable, or a protocol
    /// error when it is not a compatible broker.
    pub fn add_peer(&self, addr: &str) -> Result<NodeId, WireError> {
        self.core.federation.connect_peer(addr)
    }

    /// The server-side click store fed by `UploadClicks` requests. Read
    /// queries deref to the in-memory [`reef_attention::ClickStore`];
    /// with [`BrokerServerBuilder::data_dir`] configured the store is
    /// WAL-backed and survives restarts.
    pub fn click_store(&self) -> Arc<Mutex<DurableClickStore>> {
        Arc::clone(&self.core.clicks)
    }

    /// Aggregate transport counters.
    pub fn stats(&self) -> WireStatsSnapshot {
        self.core
            .stats
            .record_matcher_swaps(self.core.broker.snapshot_swaps());
        self.core.stats.snapshot()
    }

    /// Federation routing and peer-link counters.
    pub fn federation_stats(&self) -> FederationStatsSnapshot {
        self.core.federation.snapshot()
    }

    /// Transport counters per live peer link.
    pub fn peer_stats(&self) -> Vec<PeerStatsSnapshot> {
        self.core.federation.peer_stats()
    }

    /// Transport counters per live connection.
    pub fn connection_stats(&self) -> Vec<ConnectionStatsSnapshot> {
        self.core
            .connections
            .lock()
            .iter()
            .map(|conn| ConnectionStatsSnapshot {
                peer: conn.peer.to_string(),
                client: conn.client_name.lock().clone(),
                codec: conn.codec_name().to_owned(),
                subscriber: conn.subscriber.0,
                loop_id: conn.loop_id,
                wire: conn.stats.snapshot(),
            })
            .collect()
    }

    /// Number of live client connections (upgraded peer links excluded).
    pub fn connection_count(&self) -> usize {
        self.core.connections.lock().len()
    }

    /// Stop accepting, close every connection and peer link, and join all
    /// threads.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.core.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // The broker may outlive the server; stop routing delivery
        // notifications at a loop that is about to exit.
        self.core.broker.clear_delivery_notifier();
        match self.transport {
            TransportKind::Threads => {
                // Poke the blocking accept() so the loop observes the
                // flag. A wildcard bind address is not connectable on
                // every platform, so aim the poke at loopback in that
                // case.
                let mut poke_addr = self.local_addr;
                if poke_addr.ip().is_unspecified() {
                    poke_addr.set_ip(match poke_addr.ip() {
                        std::net::IpAddr::V4(_) => {
                            std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST)
                        }
                        std::net::IpAddr::V6(_) => {
                            std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST)
                        }
                    });
                }
                let _ = TcpStream::connect(poke_addr);
            }
            TransportKind::Epoll => {
                if let Some(control) = &self.loop_control {
                    control.wake_loop();
                }
            }
        }
        for handle in std::mem::take(&mut self.main_threads) {
            let _ = handle.join();
        }
        if let Some(handle) = self.autosub_thread.take() {
            let _ = handle.join();
        }
        for conn in self.core.connections.lock().iter() {
            conn.close_socket();
        }
        // Close peer links before joining connection threads: an inbound
        // peer link's reader is one of those threads, blocked on its
        // socket until the federation tears it down.
        self.core.federation.shutdown();
        let threads: Vec<JoinHandle<()>> = std::mem::take(&mut *self.conn_threads.lock());
        for handle in threads {
            let _ = handle.join();
        }
    }
}

impl Drop for BrokerServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Spawn the background refresh thread of the autosub subsystem: on the
/// configured cadence it re-observes uploaded clicks for every enrolled
/// user, applies decay, installs/retires the derived broker
/// subscriptions and queues `FeedChanged` notices for the transports to
/// push. Returns `None` (no thread) when the subsystem is disabled.
fn spawn_autosub_refresh(core: &Arc<ServerCore>) -> Option<JoinHandle<()>> {
    if !core.autosub.enabled() {
        return None;
    }
    let core = Arc::clone(core);
    let interval = core.autosub.refresh_interval();
    // Sleep in short ticks so shutdown stays prompt even under a long
    // refresh interval.
    let tick = interval
        .min(Duration::from_millis(25))
        .max(Duration::from_millis(1));
    let handle = std::thread::Builder::new()
        .name("reefd-autosub".into())
        .spawn(move || {
            let mut last = std::time::Instant::now();
            loop {
                if core.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if last.elapsed() >= interval {
                    core.autosub.refresh(&core);
                    last = std::time::Instant::now();
                }
                std::thread::sleep(tick);
            }
        })
        .expect("spawn autosub refresh thread");
    Some(handle)
}

/// Everything the accept thread needs, bundled for the move into its
/// closure.
struct AcceptLoop {
    listener: TcpListener,
    core: Arc<ServerCore>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl AcceptLoop {
    fn run(self) {
        loop {
            let (stream, peer) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(_) if self.core.shutdown.load(Ordering::SeqCst) => return,
                Err(_) => {
                    // Persistent accept errors (e.g. fd exhaustion) would
                    // otherwise busy-spin this thread at 100% CPU.
                    std::thread::sleep(Duration::from_millis(50));
                    continue;
                }
            };
            if self.core.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let _ = stream.set_nodelay(true);
            // Bound the delivery path: a consumer that stops reading can
            // stall a write for at most this long before the connection
            // is declared dead.
            let _ = stream.set_write_timeout(Some(self.core.write_timeout));
            if let Err(e) = self.spawn_connection(stream, peer) {
                // Registration failed (e.g. clone error); drop the socket.
                let _ = e;
                self.core.stats.record_error();
            }
        }
    }

    fn spawn_connection(&self, stream: TcpStream, peer: SocketAddr) -> Result<(), WireError> {
        let writer = stream.try_clone()?;
        let control = stream.try_clone()?;
        let (subscriber, inbox) = self.core.broker.register();
        let conn = Arc::new(Connection::new(
            peer,
            subscriber,
            Some(writer),
            Some(control),
            None,
        ));
        self.core.stats.record_open();
        conn.stats.record_open();
        self.core.connections.lock().push(Arc::clone(&conn));

        let reader = ConnectionReader {
            conn: Arc::clone(&conn),
            core: Arc::clone(&self.core),
        };
        let pump = DeliveryPump {
            inbox,
            conn,
            core: Arc::clone(&self.core),
        };
        let mut threads = self.conn_threads.lock();
        // Reap handles of finished connections so a long-running daemon
        // doesn't accumulate one pair per connection ever accepted.
        threads.retain(|handle| !handle.is_finished());
        threads.push(
            std::thread::Builder::new()
                .name(format!("reefd-read-{peer}"))
                .spawn(move || reader.run(stream))
                .expect("spawn reader thread"),
        );
        threads.push(
            std::thread::Builder::new()
                .name(format!("reefd-pump-{peer}"))
                .spawn(move || pump.run())
                .expect("spawn pump thread"),
        );
        Ok(())
    }
}

/// What the request loop should do after handling one frame.
enum Step {
    /// Reply sent (or attempted); keep reading requests.
    Continue,
    /// Reply sent; close the conversation.
    Close,
    /// The connection upgraded to a peer link; switch to the peer loop.
    Upgraded {
        peer_broker: String,
        peer_broker_id: u32,
    },
}

/// The per-connection request loop.
struct ConnectionReader {
    conn: Arc<Connection>,
    core: Arc<ServerCore>,
}

impl ConnectionReader {
    fn run(self, stream: TcpStream) {
        let mut owned: HashSet<SubscriptionId> = HashSet::new();
        let mut reader = BufReader::new(stream);
        loop {
            if self.core.shutdown.load(Ordering::SeqCst) || self.conn.closed.load(Ordering::SeqCst)
            {
                break;
            }
            let frame = match Frame::read_from_capped(&mut reader, self.core.max_frame) {
                Ok(Some(frame)) => frame,
                // Clean EOF or a broken socket: either way the conversation
                // is over.
                Ok(None) => break,
                Err(_) => {
                    self.conn.stats.record_error();
                    self.core.stats.record_error();
                    break;
                }
            };
            self.conn
                .stats
                .record_frame_in(frame.version, frame.wire_len());
            self.core
                .stats
                .record_frame_in(frame.version, frame.wire_len());
            // Codec negotiation: the first frame's version byte picks the
            // codec for the connection's lifetime; later frames must not
            // switch.
            let negotiated = self.conn.codec_version.load(Ordering::SeqCst);
            if negotiated == 0 {
                if CodecKind::for_version(frame.version).is_none() {
                    self.conn.stats.record_error();
                    self.core.stats.record_error();
                    // Answer in JSON, the one encoding any client can
                    // read, then give up on the stream (unknown-version
                    // payloads cannot be framed reliably).
                    let _ = self.reply(0, Response::Error {
                        message: format!(
                            "unsupported protocol version {}; this server speaks v1 (json) and v2 (binary)",
                            frame.version
                        ),
                    });
                    break;
                }
                self.conn
                    .codec_version
                    .store(frame.version, Ordering::SeqCst);
            } else if frame.version != negotiated {
                self.conn.stats.record_error();
                self.core.stats.record_error();
                let _ = self.reply(0, Response::Error {
                    message: format!(
                        "codec switched mid-stream: connection negotiated v{negotiated}, frame carries v{}",
                        frame.version
                    ),
                });
                break;
            }
            let client_frame = match self.conn.codec().decode_client(&frame) {
                Ok(client_frame) => client_frame,
                Err(e) => {
                    self.conn.stats.record_error();
                    self.core.stats.record_error();
                    let _ = self.reply(
                        0,
                        Response::Error {
                            message: e.to_string(),
                        },
                    );
                    // On v1 the error reply pairs by order, so the
                    // conversation can continue. On v2 the real
                    // correlation id is unrecoverable — a reply with a
                    // synthesized id could mis-pair with (or never reach)
                    // an in-flight request — so close instead.
                    if frame.version == crate::frame::PROTOCOL_V1_JSON {
                        continue;
                    }
                    break;
                }
            };
            self.conn.stats.record_request();
            self.core.stats.record_request();
            match self.step(
                client_frame.corr,
                client_frame.request,
                frame.wire_len(),
                &mut owned,
            ) {
                Step::Continue => {}
                Step::Close => break,
                Step::Upgraded {
                    peer_broker,
                    peer_broker_id,
                } => {
                    self.run_as_peer(reader, peer_broker, peer_broker_id, &owned);
                    return;
                }
            }
        }
        self.core.finish_connection(&self.conn, &owned);
    }

    fn step(
        &self,
        corr: u64,
        request: Request,
        request_wire_len: usize,
        owned: &mut HashSet<SubscriptionId>,
    ) -> Step {
        if let Request::PeerHello {
            version,
            broker,
            broker_id,
        } = request
        {
            let negotiated = self.conn.codec_version.load(Ordering::SeqCst);
            if version != negotiated {
                let _ = self.reply(corr, Response::Error {
                    message: format!(
                        "PeerHello version field v{version} disagrees with the frame codec v{negotiated}"
                    ),
                });
                return Step::Close;
            }
            // Flip the flag before the welcome goes out: from the
            // dialer's perspective every frame after `PeerWelcome` must
            // be a `PeerMsg`, so the delivery pump (which checks the flag
            // under the shared write lock) must never write a straggling
            // `Deliver` after it.
            self.conn.upgraded.store(true, Ordering::SeqCst);
            let welcome = Response::PeerWelcome {
                version: negotiated,
                broker: self.core.federation.name().to_owned(),
                broker_id: self.core.federation.broker_id(),
            };
            if self.reply(corr, welcome).is_err() {
                return Step::Close;
            }
            return Step::Upgraded {
                peer_broker: broker,
                peer_broker_id: broker_id,
            };
        }
        let is_bye = matches!(request, Request::Bye);
        let response = self
            .core
            .handle_request(&self.conn, owned, request, request_wire_len);
        if matches!(response, Response::Error { .. }) {
            self.conn.stats.record_error();
            self.core.stats.record_error();
        }
        if self.reply(corr, response).is_err() || is_bye {
            Step::Close
        } else {
            Step::Continue
        }
    }

    /// Turn the connection into a federation peer link. The `PeerWelcome`
    /// reply is already on the wire and `upgraded` is set; from here the
    /// link's writer thread owns all writes, and this thread runs the
    /// shared peer read loop until the socket dies.
    fn run_as_peer(
        &self,
        reader: BufReader<TcpStream>,
        peer_broker: String,
        peer_broker_id: u32,
        owned: &HashSet<SubscriptionId>,
    ) {
        // This connection is no longer a client: the delivery pump bows
        // out, its broker subscriber goes away, and anything it
        // subscribed while still speaking the client protocol is
        // withdrawn from the routing core.
        self.core
            .autosub
            .drop_subscriber(&self.core, self.conn.subscriber);
        for sub in owned {
            self.core.federation.local_unsubscribe(*sub);
        }
        let _ = self.core.broker.deregister(self.conn.subscriber);
        self.core
            .connections
            .lock()
            .retain(|c| !Arc::ptr_eq(c, &self.conn));
        self.conn.stats.record_close();
        self.core.stats.record_close();
        let stream = match reader.get_ref().try_clone() {
            Ok(stream) => stream,
            Err(_) => {
                self.core.stats.record_error();
                self.conn.close_socket();
                return;
            }
        };
        let codec = CodecKind::for_version(self.conn.codec_version.load(Ordering::SeqCst))
            .unwrap_or(CodecKind::Json);
        let node = match self.core.federation.adopt_inbound(
            stream,
            peer_broker,
            peer_broker_id,
            self.conn.peer.to_string(),
            codec,
        ) {
            Ok(node) => node,
            Err(_) => {
                self.core.stats.record_error();
                self.conn.close_socket();
                return;
            }
        };
        self.core.federation.run_inbound_reader(node, reader);
    }

    fn reply(&self, corr: u64, response: Response) -> Result<(), WireError> {
        self.conn
            .send(&ServerFrame::Reply { corr, response }, &self.core.stats)
    }
}

/// The per-connection delivery pump: subscriber queue → socket.
struct DeliveryPump {
    inbox: SubscriberHandle,
    conn: Arc<Connection>,
    core: Arc<ServerCore>,
}

impl DeliveryPump {
    fn run(self) {
        loop {
            if self.core.shutdown.load(Ordering::SeqCst)
                || self.conn.closed.load(Ordering::SeqCst)
                || self.conn.upgraded.load(Ordering::SeqCst)
            {
                return;
            }
            // Unsolicited FeedChanged notices ride the delivery path:
            // the pump's park bound caps their latency at PUMP_PARK.
            for change in self.core.autosub.take_notices(self.conn.subscriber) {
                if self
                    .conn
                    .send(&ServerFrame::FeedChanged(change), &self.core.stats)
                    .is_err()
                {
                    self.conn.close_socket();
                    return;
                }
            }
            let Some(event) = self.inbox.recv_timeout(PUMP_PARK) else {
                continue;
            };
            // `event` is the shared Arc the broker fanned out; encode
            // from the borrow, never cloning the payload.
            if self.conn.send_deliver(&event, &self.core.stats).is_err() {
                // Write failed or timed out: the consumer is gone or
                // stalled past the backpressure bound. The delivery is
                // lost — count it — and the reader does the cleanup.
                self.conn.stats.record_delivery_drop();
                self.core.stats.record_delivery_drop();
                self.conn.close_socket();
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    #[test]
    fn shutdown_returns_even_on_a_wildcard_bind() {
        // The loopback poke is the *threaded* accept loop's unblocking
        // mechanism; the epoll loop is woken through its eventfd instead.
        let server = BrokerServer::builder()
            .transport(TransportKind::Threads)
            .bind("0.0.0.0:0")
            .expect("bind wildcard");
        let port = server.local_addr().port();
        let client = Client::connect(("127.0.0.1", port)).expect("connect");
        client.ping().expect("ping");
        drop(client);
        // Must not hang: the shutdown poke has to reach the accept loop
        // even though 0.0.0.0 is not universally connectable.
        let done = std::sync::Arc::new(AtomicBool::new(false));
        let flag = std::sync::Arc::clone(&done);
        let handle = std::thread::spawn(move || {
            server.shutdown();
            flag.store(true, Ordering::SeqCst);
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !done.load(Ordering::SeqCst) {
            assert!(std::time::Instant::now() < deadline, "shutdown hung");
            std::thread::sleep(Duration::from_millis(10));
        }
        handle.join().unwrap();
    }

    #[test]
    fn finished_connection_handles_are_reaped() {
        // Thread-handle reaping only exists on the threaded transport;
        // the event loop spawns no per-connection threads at all.
        let server = BrokerServer::builder()
            .transport(TransportKind::Threads)
            .bind("127.0.0.1:0")
            .expect("bind");
        for _ in 0..8 {
            let client = Client::connect(server.local_addr()).expect("connect");
            client.close().expect("close");
        }
        // Wait for the server side of the closed connections to finish.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while server.connection_count() > 0 {
            assert!(std::time::Instant::now() < deadline, "connections reaped");
            std::thread::sleep(Duration::from_millis(10));
        }
        // One more accept triggers the reap; the handle list must not hold
        // two handles per historical connection.
        let client = Client::connect(server.local_addr()).expect("connect");
        client.ping().expect("ping");
        assert!(server.conn_threads.lock().len() <= 4, "dead handles reaped");
        server.shutdown();
    }

    #[test]
    fn two_servers_federate_and_cross_deliver() {
        let a = BrokerServer::builder()
            .name("fed-a")
            .bind("127.0.0.1:0")
            .expect("bind a");
        let b = BrokerServer::builder()
            .name("fed-b")
            .peer(a.local_addr().to_string())
            .bind("127.0.0.1:0")
            .expect("bind b");
        // The dialer registers its link before bind() returns; the
        // acceptor registers on its connection thread, so poll.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while a.federation_stats().peers < 1 {
            assert!(std::time::Instant::now() < deadline, "peer link adopted");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(b.federation_stats().peers, 1);

        let sub = Client::connect_as(a.local_addr(), "sub").expect("connect sub");
        sub.subscribe(reef_pubsub::Filter::topic("fed"))
            .expect("subscribe");
        let publisher = Client::connect_as(b.local_addr(), "pub").expect("connect pub");
        // The subscription needs a moment to be advertised across.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while b.federation_stats().routing_entries == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "advertisement arrived"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        publisher
            .publish(reef_pubsub::Event::topical("fed", "hello"))
            .expect("publish");
        let got = sub.recv_delivery(Duration::from_secs(5)).expect("delivery");
        assert_eq!(
            got.event.get(reef_pubsub::TOPIC_ATTR).unwrap().as_str(),
            Some("fed")
        );
        let stats = b.federation_stats();
        assert_eq!(stats.events_forwarded, 1);
        drop(sub);
        drop(publisher);
        b.shutdown();
        a.shutdown();
    }
}
