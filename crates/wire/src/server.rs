//! `BrokerServer`: the threaded TCP face of a [`reef_pubsub::Broker`].
//!
//! One accept thread hands each connection to a dedicated **reader thread**
//! (parses request frames, executes them against the shared broker, writes
//! replies) and a dedicated **delivery pump** (parks on the connection's
//! subscriber queue and streams matching events out as
//! [`ServerMessage::Deliver`] frames). Replies and deliveries share the
//! socket through a per-connection write lock, so each frame goes out
//! whole.
//!
//! Shutdown is cooperative: [`BrokerServer::shutdown`] raises a flag, pokes
//! the accept loop with a loopback connection, closes every live socket
//! (which unblocks the reader threads) and joins everything.

use crate::error::WireError;
use crate::frame::{Frame, PROTOCOL_VERSION};
use crate::protocol::{Deliver, Request, Response, ServerMessage};
use crate::stats::{ConnectionStatsSnapshot, WireStats, WireStatsSnapshot};
use parking_lot::Mutex;
use reef_attention::ClickStore;
use reef_pubsub::{Broker, SubscriberHandle, SubscriberId, SubscriptionId};
use std::collections::HashSet;
use std::io::BufReader;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the delivery pump parks on an idle subscriber queue before
/// re-checking the shutdown and connection flags.
const PUMP_PARK: Duration = Duration::from_millis(25);

/// Configures and builds a [`BrokerServer`].
#[derive(Debug, Default)]
pub struct BrokerServerBuilder {
    broker: Option<Arc<Broker>>,
    name: Option<String>,
}

impl BrokerServerBuilder {
    /// Serve an existing (possibly schema-validating, bounded-queue)
    /// broker instead of a fresh default one.
    pub fn broker(mut self, broker: Arc<Broker>) -> Self {
        self.broker = Some(broker);
        self
    }

    /// Server name reported in `Hello` responses.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Bind `addr` and start serving.
    pub fn bind(self, addr: impl ToSocketAddrs) -> Result<BrokerServer, WireError> {
        BrokerServer::start(
            addr,
            self.broker.unwrap_or_else(|| Arc::new(Broker::new())),
            self.name
                .unwrap_or_else(|| format!("reefd/{}", env!("CARGO_PKG_VERSION"))),
        )
    }
}

/// State shared with a single connection's two threads.
struct Connection {
    peer: SocketAddr,
    client_name: Mutex<String>,
    subscriber: SubscriberId,
    writer: Mutex<TcpStream>,
    /// Clone of the same socket used only for `shutdown`, so closing never
    /// has to wait on the writer mutex (a pump blocked mid-write holds it).
    control: TcpStream,
    stats: WireStats,
    closed: AtomicBool,
}

impl Connection {
    /// Serialize, frame and write one message, updating both counter sets.
    fn send(&self, msg: &ServerMessage, aggregate: &WireStats) -> Result<(), WireError> {
        let frame = Frame::encode(msg)?;
        let mut writer = self.writer.lock();
        let written = frame.write_to(&mut *writer)?;
        self.stats.record_frame_out(written);
        aggregate.record_frame_out(written);
        if matches!(msg, ServerMessage::Deliver(_)) {
            self.stats.record_delivery();
            aggregate.record_delivery();
        }
        Ok(())
    }

    fn close_socket(&self) {
        self.closed.store(true, Ordering::SeqCst);
        let _ = self.control.shutdown(Shutdown::Both);
    }
}

/// A TCP publish-subscribe broker daemon.
///
/// # Examples
///
/// ```
/// use reef_pubsub::{Event, Filter, Op};
/// use reef_wire::{BrokerServer, Client};
///
/// let server = BrokerServer::bind("127.0.0.1:0").unwrap();
/// let subscriber = Client::connect(server.local_addr()).unwrap();
/// subscriber.subscribe(Filter::new().and("n", Op::Gt, 1)).unwrap();
/// let publisher = Client::connect(server.local_addr()).unwrap();
/// publisher.publish(Event::builder().attr("n", 2).build()).unwrap();
/// let delivery = subscriber.recv_delivery(std::time::Duration::from_secs(5));
/// assert!(delivery.is_some());
/// server.shutdown();
/// ```
pub struct BrokerServer {
    broker: Arc<Broker>,
    clicks: Arc<Mutex<ClickStore>>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    connections: Arc<Mutex<Vec<Arc<Connection>>>>,
    stats: Arc<WireStats>,
}

impl std::fmt::Debug for BrokerServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrokerServer")
            .field("local_addr", &self.local_addr)
            .field("connections", &self.connections.lock().len())
            .finish()
    }
}

impl BrokerServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and serve a fresh
    /// default broker.
    pub fn bind(addr: impl ToSocketAddrs) -> Result<BrokerServer, WireError> {
        BrokerServerBuilder::default().bind(addr)
    }

    /// Start configuring a server.
    pub fn builder() -> BrokerServerBuilder {
        BrokerServerBuilder::default()
    }

    fn start(
        addr: impl ToSocketAddrs,
        broker: Arc<Broker>,
        name: String,
    ) -> Result<BrokerServer, WireError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let server = BrokerServer {
            broker,
            clicks: Arc::new(Mutex::new(ClickStore::new())),
            local_addr,
            shutdown: Arc::new(AtomicBool::new(false)),
            accept_thread: None,
            conn_threads: Arc::new(Mutex::new(Vec::new())),
            connections: Arc::new(Mutex::new(Vec::new())),
            stats: Arc::new(WireStats::new()),
        };

        let accept = AcceptLoop {
            listener,
            broker: Arc::clone(&server.broker),
            clicks: Arc::clone(&server.clicks),
            shutdown: Arc::clone(&server.shutdown),
            conn_threads: Arc::clone(&server.conn_threads),
            connections: Arc::clone(&server.connections),
            stats: Arc::clone(&server.stats),
            name,
        };
        let mut server = server;
        server.accept_thread = Some(
            std::thread::Builder::new()
                .name("reefd-accept".into())
                .spawn(move || accept.run())
                .expect("spawn accept thread"),
        );
        Ok(server)
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The broker being served.
    pub fn broker(&self) -> &Arc<Broker> {
        &self.broker
    }

    /// The server-side click store fed by `UploadClicks` requests.
    pub fn click_store(&self) -> Arc<Mutex<ClickStore>> {
        Arc::clone(&self.clicks)
    }

    /// Aggregate transport counters.
    pub fn stats(&self) -> WireStatsSnapshot {
        self.stats.snapshot()
    }

    /// Transport counters per live connection.
    pub fn connection_stats(&self) -> Vec<ConnectionStatsSnapshot> {
        self.connections
            .lock()
            .iter()
            .map(|conn| ConnectionStatsSnapshot {
                peer: conn.peer.to_string(),
                client: conn.client_name.lock().clone(),
                subscriber: conn.subscriber.0,
                wire: conn.stats.snapshot(),
            })
            .collect()
    }

    /// Number of live connections.
    pub fn connection_count(&self) -> usize {
        self.connections.lock().len()
    }

    /// Stop accepting, close every connection, and join all threads.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Poke the blocking accept() so the loop observes the flag. A
        // wildcard bind address is not connectable on every platform, so
        // aim the poke at loopback in that case.
        let mut poke_addr = self.local_addr;
        if poke_addr.ip().is_unspecified() {
            poke_addr.set_ip(match poke_addr.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(poke_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for conn in self.connections.lock().iter() {
            conn.close_socket();
        }
        let threads: Vec<JoinHandle<()>> = std::mem::take(&mut *self.conn_threads.lock());
        for handle in threads {
            let _ = handle.join();
        }
    }
}

impl Drop for BrokerServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Everything the accept thread needs, bundled for the move into its
/// closure.
struct AcceptLoop {
    listener: TcpListener,
    broker: Arc<Broker>,
    clicks: Arc<Mutex<ClickStore>>,
    shutdown: Arc<AtomicBool>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    connections: Arc<Mutex<Vec<Arc<Connection>>>>,
    stats: Arc<WireStats>,
    name: String,
}

impl AcceptLoop {
    fn run(self) {
        loop {
            let (stream, peer) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(_) if self.shutdown.load(Ordering::SeqCst) => return,
                Err(_) => {
                    // Persistent accept errors (e.g. fd exhaustion) would
                    // otherwise busy-spin this thread at 100% CPU.
                    std::thread::sleep(Duration::from_millis(50));
                    continue;
                }
            };
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let _ = stream.set_nodelay(true);
            if let Err(e) = self.spawn_connection(stream, peer) {
                // Registration failed (e.g. clone error); drop the socket.
                let _ = e;
                self.stats.record_error();
            }
        }
    }

    fn spawn_connection(&self, stream: TcpStream, peer: SocketAddr) -> Result<(), WireError> {
        let writer = stream.try_clone()?;
        let control = stream.try_clone()?;
        let (subscriber, inbox) = self.broker.register();
        let conn = Arc::new(Connection {
            peer,
            client_name: Mutex::new(String::new()),
            subscriber,
            writer: Mutex::new(writer),
            control,
            stats: WireStats::new(),
            closed: AtomicBool::new(false),
        });
        self.stats.record_open();
        conn.stats.record_open();
        self.connections.lock().push(Arc::clone(&conn));

        let reader = ConnectionReader {
            conn: Arc::clone(&conn),
            broker: Arc::clone(&self.broker),
            clicks: Arc::clone(&self.clicks),
            connections: Arc::clone(&self.connections),
            aggregate: Arc::clone(&self.stats),
            shutdown: Arc::clone(&self.shutdown),
            server_name: self.name.clone(),
        };
        let pump = DeliveryPump {
            inbox,
            conn,
            aggregate: Arc::clone(&self.stats),
            shutdown: Arc::clone(&self.shutdown),
        };
        let mut threads = self.conn_threads.lock();
        // Reap handles of finished connections so a long-running daemon
        // doesn't accumulate one pair per connection ever accepted.
        threads.retain(|handle| !handle.is_finished());
        threads.push(
            std::thread::Builder::new()
                .name(format!("reefd-read-{peer}"))
                .spawn(move || reader.run(stream))
                .expect("spawn reader thread"),
        );
        threads.push(
            std::thread::Builder::new()
                .name(format!("reefd-pump-{peer}"))
                .spawn(move || pump.run())
                .expect("spawn pump thread"),
        );
        Ok(())
    }
}

/// The per-connection request loop.
struct ConnectionReader {
    conn: Arc<Connection>,
    broker: Arc<Broker>,
    clicks: Arc<Mutex<ClickStore>>,
    connections: Arc<Mutex<Vec<Arc<Connection>>>>,
    aggregate: Arc<WireStats>,
    shutdown: Arc<AtomicBool>,
    server_name: String,
}

impl ConnectionReader {
    fn run(self, stream: TcpStream) {
        let mut owned: HashSet<SubscriptionId> = HashSet::new();
        let mut reader = BufReader::new(stream);
        loop {
            if self.shutdown.load(Ordering::SeqCst) || self.conn.closed.load(Ordering::SeqCst) {
                break;
            }
            let frame = match Frame::read_from(&mut reader) {
                Ok(Some(frame)) => frame,
                // Clean EOF or a broken socket: either way the conversation
                // is over.
                Ok(None) => break,
                Err(_) => {
                    self.conn.stats.record_error();
                    self.aggregate.record_error();
                    break;
                }
            };
            self.conn.stats.record_frame_in(frame.wire_len());
            self.aggregate.record_frame_in(frame.wire_len());
            let request: Request = match frame.decode() {
                Ok(req) => req,
                Err(e) => {
                    self.conn.stats.record_error();
                    self.aggregate.record_error();
                    let _ = self.reply(Response::Error {
                        message: e.to_string(),
                    });
                    continue;
                }
            };
            self.conn.stats.record_request();
            self.aggregate.record_request();
            let is_bye = matches!(request, Request::Bye);
            let response = self.handle(request, &mut owned);
            if matches!(response, Response::Error { .. }) {
                self.conn.stats.record_error();
                self.aggregate.record_error();
            }
            if self.reply(response).is_err() || is_bye {
                break;
            }
        }
        self.finish();
    }

    fn reply(&self, response: Response) -> Result<(), WireError> {
        self.conn
            .send(&ServerMessage::Reply(response), &self.aggregate)
    }

    fn handle(&self, request: Request, owned: &mut HashSet<SubscriptionId>) -> Response {
        match request {
            Request::Hello { version, client } => {
                if version != PROTOCOL_VERSION {
                    return Response::Error {
                        message: format!(
                            "protocol version mismatch: server speaks v{PROTOCOL_VERSION}, client sent v{version}"
                        ),
                    };
                }
                *self.conn.client_name.lock() = client;
                Response::Hello {
                    version: PROTOCOL_VERSION,
                    server: self.server_name.clone(),
                    subscriber: self.conn.subscriber.0,
                }
            }
            Request::Subscribe { filter } => {
                match self.broker.subscribe(self.conn.subscriber, filter) {
                    Ok(subscription) => {
                        owned.insert(subscription);
                        Response::Subscribed { subscription }
                    }
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                }
            }
            Request::Unsubscribe { subscription } => {
                if !owned.contains(&subscription) {
                    return Response::Error {
                        message: format!(
                            "subscription {subscription} is not owned by this connection"
                        ),
                    };
                }
                match self.broker.unsubscribe(subscription) {
                    Ok(filter) => {
                        owned.remove(&subscription);
                        Response::Unsubscribed { filter }
                    }
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                }
            }
            Request::Publish { event } => match self.broker.publish(event) {
                Ok(outcome) => Response::Published {
                    id: outcome.id,
                    delivered: outcome.delivered as u64,
                    dropped: outcome.dropped as u64,
                },
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            },
            Request::UploadClicks { batch } => {
                let receipt = self.clicks.lock().ingest_upload(batch);
                Response::ClicksAccepted { receipt }
            }
            Request::Stats => Response::Stats {
                broker: self.broker.stats(),
                wire: self.aggregate.snapshot(),
            },
            Request::Ping => Response::Pong,
            Request::Bye => Response::Bye,
        }
    }

    fn finish(&self) {
        self.conn.close_socket();
        let _ = self.broker.deregister(self.conn.subscriber);
        self.conn.stats.record_close();
        self.aggregate.record_close();
        self.connections
            .lock()
            .retain(|c| !Arc::ptr_eq(c, &self.conn));
    }
}

/// The per-connection delivery pump: subscriber queue → socket.
struct DeliveryPump {
    inbox: SubscriberHandle,
    conn: Arc<Connection>,
    aggregate: Arc<WireStats>,
    shutdown: Arc<AtomicBool>,
}

impl DeliveryPump {
    fn run(self) {
        loop {
            if self.shutdown.load(Ordering::SeqCst) || self.conn.closed.load(Ordering::SeqCst) {
                return;
            }
            let Some(event) = self.inbox.recv_timeout(PUMP_PARK) else {
                continue;
            };
            let message = ServerMessage::Deliver(Deliver { event });
            if self.conn.send(&message, &self.aggregate).is_err() {
                // Peer went away mid-delivery; the reader does the cleanup.
                self.conn.closed.store(true, Ordering::SeqCst);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    #[test]
    fn shutdown_returns_even_on_a_wildcard_bind() {
        let server = BrokerServer::bind("0.0.0.0:0").expect("bind wildcard");
        let port = server.local_addr().port();
        let client = Client::connect(("127.0.0.1", port)).expect("connect");
        client.ping().expect("ping");
        drop(client);
        // Must not hang: the shutdown poke has to reach the accept loop
        // even though 0.0.0.0 is not universally connectable.
        let done = std::sync::Arc::new(AtomicBool::new(false));
        let flag = std::sync::Arc::clone(&done);
        let handle = std::thread::spawn(move || {
            server.shutdown();
            flag.store(true, Ordering::SeqCst);
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !done.load(Ordering::SeqCst) {
            assert!(std::time::Instant::now() < deadline, "shutdown hung");
            std::thread::sleep(Duration::from_millis(10));
        }
        handle.join().unwrap();
    }

    #[test]
    fn finished_connection_handles_are_reaped() {
        let server = BrokerServer::bind("127.0.0.1:0").expect("bind");
        for _ in 0..8 {
            let client = Client::connect(server.local_addr()).expect("connect");
            client.close().expect("close");
        }
        // Wait for the server side of the closed connections to finish.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while server.connection_count() > 0 {
            assert!(std::time::Instant::now() < deadline, "connections reaped");
            std::thread::sleep(Duration::from_millis(10));
        }
        // One more accept triggers the reap; the handle list must not hold
        // two handles per historical connection.
        let client = Client::connect(server.local_addr()).expect("connect");
        client.ping().expect("ping");
        assert!(server.conn_threads.lock().len() <= 4, "dead handles reaped");
        server.shutdown();
    }
}
