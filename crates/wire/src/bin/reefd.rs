//! `reefd` — the reef broker daemon.
//!
//! Serves a content-based publish-subscribe broker over TCP using the
//! reef-wire protocol, ingests uploaded attention data into a click
//! store (durable under `--data-dir`: segmented WAL + snapshot
//! compaction, recovered on restart), and federates with other `reefd`
//! instances over the same port (`--peer`): subscriptions are forwarded
//! with covering-based pruning and events routed along the broker tree,
//! or — with `--mesh` — advertised as path vectors over an arbitrary
//! mesh that survives link loss and cycles.

use reef_core::AutoSubMode;
use reef_pubsub::OverflowPolicy;
use reef_wire::{AutoSubPolicy, AutosubOptions, BrokerServer, CodecKind, TransportKind};
use std::path::PathBuf;
use std::time::Duration;

const DEFAULT_ADDR: &str = "127.0.0.1:7474";

const USAGE: &str = "\
reefd — reef publish-subscribe broker daemon

USAGE:
    reefd [OPTIONS] [ADDR]

ARGS:
    ADDR                     listen address (default 127.0.0.1:7474;
                             env REEF_LISTEN)

OPTIONS:
    -l, --listen ADDR        listen address (same as the positional ADDR)
        --name NAME          broker name announced to clients and peers
                             (default \"reefd\")
        --transport KIND     server core: epoll (sharded readiness event
                             loops; Linux-only, the default) | threads
                             (2 OS threads per connection)
        --loop-threads N     number of sharded epoll readiness loops;
                             connections are spread across shards by fd
                             hash, peer links stay on shard 0 (default:
                             available cores; needs --transport epoll)
        --peer ADDR          federate with the reefd at ADDR; repeat the
                             flag to peer with several brokers. Without
                             --mesh the overlay must stay a tree; with
                             --mesh cycles and redundant links are fine
        --peer-retry         re-dial dead peer links with capped
                             exponential backoff (handshake and codec
                             negotiation re-run on reconnect)
        --mesh               path-vector mesh routing: advertisements
                             carry broker-id paths, duplicate events are
                             suppressed by a seen-cache, and a dead link
                             fails over to the best alternate path. All
                             federated brokers must agree on this flag;
                             implies --no-covering
        --route-refresh-ms N milliseconds between periodic full route
                             re-advertisements in mesh mode; 0 disables
                             (default 5000)
        --peer-timeout-ms N  declare a peer link dead after N ms of
                             silence (pinged at N/3); 0 disables
                             keepalive (default 10000)
        --codec CODEC        wire codec used when dialing peers:
                             json (v1) | binary (v2, default). Inbound
                             clients and peers always negotiate their
                             own codec per connection
        --data-dir DIR       persist the click store under DIR (segmented
                             WAL + snapshots); a restart on the same DIR
                             recovers every acknowledged upload. Default:
                             in-memory, nothing survives a restart
        --wal-segment-bytes N
                             rotate WAL segments past N bytes
                             (default 8388608; needs --data-dir)
        --snapshot-every N   write a click-store snapshot and compact old
                             segments every N upload batches; 0 disables
                             (default 256; needs --data-dir)
        --no-covering        disable covering-based advertisement pruning
                             toward peers
        --queue-capacity N   bound each subscriber's delivery queue to N
                             events (default: unbounded)
        --overflow POLICY    what to do when a bounded queue is full:
                             drop-new | drop-old | block | error
                             (default drop-new; `error` aborts the
                             publish with an error reply)
        --peer-queue N       bound each peer link's outgoing event queue
                             (default 1024)
        --write-timeout-ms N socket write timeout for delivery and peer
                             pumps, in milliseconds (default 5000)
        --max-frame-bytes N  drop any connection (client or peer) that
                             announces a frame longer than N bytes; the
                             length prefix is checked before any buffer
                             is reserved (default 16777216, also the
                             protocol ceiling)
        --autosub            enable automatic subscriptions: clients
                             enroll users with AutoSubscribe, the daemon
                             mines their uploaded clicks and installs /
                             retires the derived filters as live broker
                             subscriptions, pushing FeedChanged notices
        --autosub-recommender KIND
                             recommender deriving the filters:
                             topic (feed-URL voting, default) | content
                             (keyword mining over clicked URLs)
        --autosub-refresh-ms N
                             milliseconds between autosub refresh cycles
                             (decay + re-derivation; default 1000)
        --autosub-half-life S
                             interest decay half-life in seconds; 0
                             disables decay (default 600)
        --stats-interval S   seconds between stats lines, 0 disables
                             (default 10; env REEF_STATS_INTERVAL)
    -h, --help               print this help and exit
";

/// Everything the flags configure.
struct Config {
    listen: String,
    name: String,
    transport: TransportKind,
    loop_threads: Option<usize>,
    peers: Vec<String>,
    peer_retry: bool,
    mesh: bool,
    route_refresh: Duration,
    peer_timeout: Option<Duration>,
    codec: CodecKind,
    covering: bool,
    queue_capacity: Option<usize>,
    overflow: OverflowPolicy,
    peer_queue: usize,
    write_timeout: Duration,
    max_frame_bytes: Option<usize>,
    stats_interval: u64,
    data_dir: Option<PathBuf>,
    wal_segment_bytes: Option<u64>,
    snapshot_every: Option<u64>,
    autosub: bool,
    autosub_recommender: AutoSubMode,
    autosub_refresh: Duration,
    autosub_half_life: f64,
}

impl Config {
    fn default_from_env() -> Config {
        Config {
            listen: std::env::var("REEF_LISTEN").unwrap_or_else(|_| DEFAULT_ADDR.to_owned()),
            name: "reefd".to_owned(),
            transport: TransportKind::default(),
            loop_threads: None,
            peers: Vec::new(),
            peer_retry: false,
            mesh: false,
            route_refresh: Duration::from_millis(5000),
            peer_timeout: Some(Duration::from_millis(10_000)),
            codec: CodecKind::default(),
            covering: true,
            queue_capacity: None,
            overflow: OverflowPolicy::DropAndCount,
            peer_queue: 1024,
            write_timeout: Duration::from_secs(5),
            max_frame_bytes: None,
            stats_interval: std::env::var("REEF_STATS_INTERVAL")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(10),
            data_dir: None,
            wal_segment_bytes: None,
            snapshot_every: None,
            autosub: false,
            autosub_recommender: AutoSubMode::default(),
            autosub_refresh: Duration::from_millis(1000),
            autosub_half_life: 600.0,
        }
    }
}

fn bail(message: &str) -> ! {
    eprintln!("reefd: {message}");
    eprintln!("run `reefd --help` for usage");
    std::process::exit(2);
}

fn parse_args(args: impl Iterator<Item = String>) -> Config {
    let mut config = Config::default_from_env();
    let mut args = args.peekable();
    let mut positional_seen = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            "-l" | "--listen" => {
                config.listen = args
                    .next()
                    .unwrap_or_else(|| bail("--listen needs an address"));
            }
            "--name" => {
                config.name = args.next().unwrap_or_else(|| bail("--name needs a value"));
            }
            "--transport" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| bail("--transport needs a value"));
                config.transport = TransportKind::parse(&raw)
                    .unwrap_or_else(|| bail("--transport must be one of: threads, epoll"));
            }
            "--loop-threads" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| bail("--loop-threads needs a number"));
                match raw.parse::<usize>() {
                    Ok(n) if n > 0 => config.loop_threads = Some(n),
                    _ => bail("--loop-threads must be a positive integer"),
                }
            }
            "--peer" => {
                config.peers.push(
                    args.next()
                        .unwrap_or_else(|| bail("--peer needs an address")),
                );
            }
            "--peer-retry" => config.peer_retry = true,
            "--mesh" => config.mesh = true,
            "--route-refresh-ms" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| bail("--route-refresh-ms needs a number"));
                match raw.parse::<u64>() {
                    Ok(ms) => config.route_refresh = Duration::from_millis(ms),
                    Err(_) => bail("--route-refresh-ms must be an integer (0 disables)"),
                }
            }
            "--peer-timeout-ms" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| bail("--peer-timeout-ms needs a number"));
                match raw.parse::<u64>() {
                    Ok(0) => config.peer_timeout = None,
                    Ok(ms) => config.peer_timeout = Some(Duration::from_millis(ms)),
                    Err(_) => bail("--peer-timeout-ms must be an integer (0 disables)"),
                }
            }
            "--codec" => {
                let raw = args.next().unwrap_or_else(|| bail("--codec needs a value"));
                config.codec = CodecKind::parse(&raw)
                    .unwrap_or_else(|| bail("--codec must be one of: json, binary"));
            }
            "--data-dir" => {
                config.data_dir = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| bail("--data-dir needs a directory")),
                ));
            }
            "--wal-segment-bytes" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| bail("--wal-segment-bytes needs a number"));
                match raw.parse::<u64>() {
                    Ok(n) if n > 0 => config.wal_segment_bytes = Some(n),
                    _ => bail("--wal-segment-bytes must be a positive integer"),
                }
            }
            "--snapshot-every" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| bail("--snapshot-every needs a number"));
                match raw.parse::<u64>() {
                    Ok(n) => config.snapshot_every = Some(n),
                    Err(_) => bail("--snapshot-every must be an integer (0 disables)"),
                }
            }
            "--no-covering" => config.covering = false,
            "--queue-capacity" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| bail("--queue-capacity needs a number"));
                match raw.parse::<usize>() {
                    Ok(n) if n > 0 => config.queue_capacity = Some(n),
                    _ => bail("--queue-capacity must be a positive integer"),
                }
            }
            "--overflow" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| bail("--overflow needs a policy"));
                config.overflow = OverflowPolicy::parse(&raw).unwrap_or_else(|| {
                    bail("--overflow must be one of: drop-new, drop-old, block, error")
                });
            }
            "--peer-queue" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| bail("--peer-queue needs a number"));
                match raw.parse::<usize>() {
                    Ok(n) if n > 0 => config.peer_queue = n,
                    _ => bail("--peer-queue must be a positive integer"),
                }
            }
            "--write-timeout-ms" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| bail("--write-timeout-ms needs a number"));
                match raw.parse::<u64>() {
                    Ok(ms) if ms > 0 => config.write_timeout = Duration::from_millis(ms),
                    _ => bail("--write-timeout-ms must be a positive integer"),
                }
            }
            "--max-frame-bytes" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| bail("--max-frame-bytes needs a number"));
                match raw.parse::<usize>() {
                    // 5 = frame header version byte + the smallest
                    // payload any codec emits; anything lower refuses
                    // every frame.
                    Ok(n) if n >= 5 => config.max_frame_bytes = Some(n),
                    _ => bail("--max-frame-bytes must be an integer of at least 5"),
                }
            }
            "--autosub" => config.autosub = true,
            "--autosub-recommender" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| bail("--autosub-recommender needs a value"));
                config.autosub_recommender = AutoSubMode::parse(&raw).unwrap_or_else(|| {
                    bail("--autosub-recommender must be one of: topic, content")
                });
            }
            "--autosub-refresh-ms" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| bail("--autosub-refresh-ms needs a number"));
                match raw.parse::<u64>() {
                    Ok(ms) if ms > 0 => config.autosub_refresh = Duration::from_millis(ms),
                    _ => bail("--autosub-refresh-ms must be a positive integer"),
                }
            }
            "--autosub-half-life" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| bail("--autosub-half-life needs a number"));
                match raw.parse::<f64>() {
                    Ok(secs) if secs >= 0.0 => config.autosub_half_life = secs,
                    _ => bail("--autosub-half-life must be a non-negative number of seconds"),
                }
            }
            "--stats-interval" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| bail("--stats-interval needs a number"));
                match raw.parse::<u64>() {
                    Ok(secs) => config.stats_interval = secs,
                    Err(_) => bail("--stats-interval must be an integer"),
                }
            }
            flag if flag.starts_with('-') => {
                bail(&format!("unknown flag `{flag}`"));
            }
            addr => {
                if positional_seen {
                    bail("at most one positional ADDR is accepted");
                }
                positional_seen = true;
                config.listen = addr.to_owned();
            }
        }
    }
    config
}

fn main() {
    let config = parse_args(std::env::args().skip(1));

    let mut builder = BrokerServer::builder()
        .name(config.name.clone())
        .transport(config.transport)
        .covering(config.covering)
        .overflow(config.overflow)
        .peer_queue_capacity(config.peer_queue)
        .write_timeout(config.write_timeout)
        .codec(config.codec)
        .peer_retry(config.peer_retry)
        .mesh(config.mesh)
        .route_refresh(config.route_refresh)
        .peer_timeout(config.peer_timeout);
    if let Some(threads) = config.loop_threads {
        builder = builder.loop_threads(threads);
    }
    if let Some(capacity) = config.queue_capacity {
        builder = builder.queue_capacity(capacity);
    }
    if let Some(dir) = &config.data_dir {
        builder = builder.data_dir(dir.clone());
    }
    if let Some(bytes) = config.wal_segment_bytes {
        builder = builder.wal_segment_bytes(bytes);
    }
    if let Some(batches) = config.snapshot_every {
        builder = builder.snapshot_every(batches);
    }
    if let Some(bytes) = config.max_frame_bytes {
        builder = builder.max_frame_bytes(bytes);
    }
    for peer in &config.peers {
        builder = builder.peer(peer.clone());
    }
    builder = builder.autosub(
        AutosubOptions::default()
            .enabled(config.autosub)
            .default_policy(AutoSubPolicy {
                recommender: config.autosub_recommender,
                half_life_secs: config.autosub_half_life,
                ..AutoSubPolicy::default()
            })
            .refresh_interval(config.autosub_refresh),
    );
    let server = match builder.bind(&config.listen) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("reefd: cannot start on {}: {e}", config.listen);
            std::process::exit(1);
        }
    };
    println!(
        "reefd `{}` listening on {} ({} transport, broker id {:#010x})",
        config.name,
        server.local_addr(),
        server.transport(),
        server.federation_stats().broker_id,
    );
    if config.mesh {
        println!(
            "reefd: mesh routing on (path-vector advertisements, {} route refresh, {} peer timeout)",
            match config.route_refresh.as_millis() {
                0 => "no".to_owned(),
                ms => format!("{ms}ms"),
            },
            match config.peer_timeout {
                None => "no".to_owned(),
                Some(t) => format!("{}ms", t.as_millis()),
            },
        );
    }
    if let Some(dir) = &config.data_dir {
        let wire = server.stats();
        println!(
            "reefd: durable click store at {} — recovered {} clicks from {} segment(s){}",
            dir.display(),
            wire.recovered_clicks,
            wire.wal_segments,
            if wire.wal_truncated_bytes > 0 {
                format!(", truncated {} torn bytes", wire.wal_truncated_bytes)
            } else {
                String::new()
            },
        );
    }
    if config.autosub {
        println!(
            "reefd: automatic subscriptions on ({} recommender, {}ms refresh, {}s half-life)",
            config.autosub_recommender,
            config.autosub_refresh.as_millis(),
            config.autosub_half_life,
        );
    }
    for peer in server.peer_stats() {
        println!(
            "reefd: federated with `{}` at {} ({} codec)",
            peer.broker, peer.addr, peer.codec
        );
    }

    // Serve until killed; periodically report transport and broker health.
    loop {
        std::thread::sleep(Duration::from_secs(config.stats_interval.max(1)));
        if config.stats_interval > 0 {
            println!(
                "reefd: {} conns | wire {} | broker {} | federation {}",
                server.connection_count(),
                server.stats(),
                server.broker().stats(),
                server.federation_stats(),
            );
        }
    }
}
