//! `reefd` — the reef broker daemon.
//!
//! Serves a content-based publish-subscribe broker over TCP using the
//! reef-wire protocol, and ingests uploaded attention data into an
//! in-memory click store.
//!
//! ```text
//! reefd [ADDR]            # default 127.0.0.1:7474
//!
//! Environment:
//!   REEF_LISTEN           listen address (overridden by ADDR argument)
//!   REEF_STATS_INTERVAL   seconds between stats lines (default 10, 0 = off)
//! ```

use reef_wire::BrokerServer;
use std::time::Duration;

const DEFAULT_ADDR: &str = "127.0.0.1:7474";

fn main() {
    let addr = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("REEF_LISTEN").ok())
        .unwrap_or_else(|| DEFAULT_ADDR.to_owned());
    if addr == "--help" || addr == "-h" {
        println!("usage: reefd [ADDR]   (default {DEFAULT_ADDR})");
        return;
    }
    let stats_interval: u64 = std::env::var("REEF_STATS_INTERVAL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    let server = match BrokerServer::builder().name("reefd").bind(&addr) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("reefd: cannot listen on {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("reefd listening on {}", server.local_addr());

    // Serve until killed; periodically report transport and broker health.
    loop {
        std::thread::sleep(Duration::from_secs(stats_interval.max(1)));
        if stats_interval > 0 {
            println!(
                "reefd: {} conns | wire {} | broker {}",
                server.connection_count(),
                server.stats(),
                server.broker().stats(),
            );
        }
    }
}
