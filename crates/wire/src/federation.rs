//! Broker federation: the sans-io routing core driven over TCP.
//!
//! `reef-pubsub` ships the routing brain — [`BrokerNode`], a state machine
//! that consumes and emits [`PeerMsg`]s but performs no I/O — and drives
//! it over a simulated network in `Overlay`. This module is the other
//! driver: the same core, the same messages, but carried between daemons
//! on OS sockets.
//!
//! * [`TcpTransport`] implements [`reef_pubsub::Transport`]: `send`
//!   enqueues a message on the matching peer link's outgoing queue,
//!   `recv` pops whatever the peer reader threads have pushed inbound.
//! * [`Federation`] owns the [`BrokerNode`], the peer links and a pump
//!   thread that moves messages between the two, mirroring
//!   `Overlay::run_until_idle` in continuous, wall-clock form.
//!
//! # Backpressure
//!
//! Each peer link bounds its outgoing *event* queue (control messages —
//! subscription forwards and cancels — are never dropped, routing state
//! must stay coherent). A full event queue counts a drop in the link's
//! [`WireStats`] and the federation totals. Sockets carry a write
//! timeout, so a stalled peer costs at most `queue capacity × write
//! timeout` before the link is declared dead and torn down.
//!
//! # Identity
//!
//! Peers identify themselves at handshake with a broker name and a
//! federation-wide `broker_id`; subscription ids are namespaced as
//! `broker_id << 32 | counter` so independently minted ids never collide.
//! Link endpoints ([`NodeId`]) are purely local handles: `0` is this
//! broker, `1..` its peer links, exactly as `BrokerNode` expects.
//!
//! # Codecs
//!
//! Each peer link negotiates its codec like any other connection: the
//! dialing broker's `PeerHello` frame carries its configured codec's
//! version byte ([`FederationConfig::codec`], default binary), the
//! acceptor adopts it, and every `PeerMsg` frame on the link uses it
//! from then on. Per-codec frame/byte counters aggregate across links
//! into [`FederationStatsSnapshot`].
//!
//! # Duplicate-subscription aggregation
//!
//! Identical filters from many local clients collapse into **one**
//! routing-core entry with a reference count: the first subscription
//! advertises the filter to peers, later identical ones only bump the
//! count (counted as `subs_aggregated`), and the advertisement is
//! withdrawn only when the count returns to zero. Remote events matching
//! the shared entry fan out to every member subscription on delivery, so
//! aggregation is invisible to subscribers — it only shrinks peer-link
//! churn.

use crate::codec::CodecKind;
use crate::error::WireError;
use crate::frame::Frame;
use crate::protocol::{ClientFrame, Request, Response, ServerFrame};
use crate::stats::{FederationStatsSnapshot, PeerStatsSnapshot, WireStats};
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;
use reef_pubsub::net::TransportDelivery;
use reef_pubsub::{
    Broker, BrokerNode, ClientId, Clock, Event, Filter, GlobalSubId, NodeId, PeerMsg,
    PublishOutcome, PublishedEvent, SubscriptionId, SystemClock, Transport,
};
use std::collections::HashMap;
use std::io::{BufReader, Read};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Link id of the local broker in its own routing core.
pub const LOCAL_NODE: NodeId = NodeId(0);

/// How long pumps park on idle queues before re-checking shutdown flags.
const PUMP_PARK: Duration = Duration::from_millis(10);

/// Read timeout applied during the peer handshake only.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// First redial delay after a dialed peer link dies (doubles per failed
/// attempt).
const REDIAL_INITIAL: Duration = Duration::from_millis(100);

/// Cap on the exponential redial backoff.
const REDIAL_CAP: Duration = Duration::from_secs(5);

/// Slice length for interruptible backoff sleeps, so shutdown never
/// waits out a full backoff period.
const REDIAL_SLICE: Duration = Duration::from_millis(25);

/// Tunables for a broker's federation layer.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// Broker name announced to peers.
    pub name: String,
    /// Enable covering-based advertisement pruning (default `true`).
    pub covering: bool,
    /// Bound on each peer link's outgoing event queue (default 1024).
    pub peer_queue_capacity: usize,
    /// Socket write timeout on peer links and client delivery paths
    /// (default 5 s).
    pub write_timeout: Duration,
    /// Codec used when dialing peers (default binary). Accepted peers
    /// negotiate their own codec per link.
    pub codec: CodecKind,
    /// Re-dial dead dialed links with capped exponential backoff
    /// (default `false`).
    pub peer_retry: bool,
    /// `true` when an epoll event loop owns the peer sockets: the
    /// federation then spawns **no** per-link writer threads and no
    /// routing pump — the loop drains the link queues, reads the
    /// sockets, and calls `Federation::drain_incoming` itself. Dialed
    /// sockets are handed to the loop through the registered
    /// `PeerLoopHook`. Default `false` (threaded transport).
    pub event_loop: bool,
    /// Route in mesh (path-vector) mode: the overlay may contain cycles
    /// and redundant links, advertisements carry broker-id paths, and
    /// duplicate events are suppressed by a bounded seen-cache. All
    /// federated brokers must agree on this flag. Default `false`
    /// (tree).
    pub mesh: bool,
    /// Interval between periodic full re-advertisements in mesh mode,
    /// so routing tables converge after arbitrary churn even if a peer
    /// missed a diff. `Duration::ZERO` disables the refresh. Ignored in
    /// tree mode. Default 5 s.
    pub route_refresh: Duration,
    /// Keepalive deadline on peer links: a link idle for a third of
    /// this is pinged, and one silent past the full deadline is
    /// declared dead and torn down (failover then promotes alternate
    /// routes in mesh mode). `None` disables keepalive. Default 10 s.
    pub peer_timeout: Option<Duration>,
    /// Clock driving keepalive and refresh timers. Defaults to
    /// [`SystemClock`]; deterministic tests inject a
    /// [`reef_pubsub::ManualClock`] and advance virtual time explicitly.
    pub clock: Arc<dyn Clock>,
    /// Largest frame accepted off a peer link before the connection is
    /// torn down (default [`crate::frame::MAX_FRAME_LEN`]). Checked
    /// against the length prefix *before* any buffer is reserved, so a
    /// hostile length cannot force a huge allocation.
    pub max_frame: usize,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            name: "reefd".to_owned(),
            covering: true,
            peer_queue_capacity: 1024,
            write_timeout: Duration::from_secs(5),
            codec: CodecKind::default(),
            peer_retry: false,
            event_loop: false,
            mesh: false,
            route_refresh: Duration::from_secs(5),
            peer_timeout: Some(Duration::from_secs(10)),
            clock: SystemClock::shared(),
            max_frame: crate::frame::MAX_FRAME_LEN,
        }
    }
}

/// Hook a readiness event loop registers with
/// [`Federation::set_loop_hook`] so peer links reach it: freshly dialed
/// sockets are adopted onto the loop, and every enqueue on a link's
/// outgoing queue wakes it.
pub(crate) trait PeerLoopHook: Send + Sync {
    /// Take ownership of a dialed peer socket for link `node`.
    fn adopt_socket(&self, node: NodeId, stream: TcpStream);
    /// Wake the loop: link queues or the inbound routing queue have work.
    fn wake(&self);
}

/// One live broker-to-broker connection.
pub(crate) struct PeerLink {
    pub(crate) node: NodeId,
    broker_name: String,
    peer_addr: String,
    /// Codec negotiated at handshake; every frame on the link uses it.
    pub(crate) codec: CodecKind,
    /// `Some(addr)` when this end dialed the link — the address a redial
    /// loop re-targets when the link dies and `peer_retry` is on.
    dialed_addr: Option<String>,
    writer: Mutex<TcpStream>,
    /// Clone of the same socket used only for `shutdown`, so closing never
    /// waits on the writer mutex.
    control: TcpStream,
    out_tx: Sender<PeerMsg>,
    /// Receiving side of the outgoing queue. The per-link writer thread
    /// drains it on the threaded transport; the epoll event loop drains
    /// it directly in loop mode.
    pub(crate) out_rx: Receiver<PeerMsg>,
    /// Events currently queued on `out_tx` (control messages are exempt
    /// from the bound).
    pub(crate) queued_events: AtomicUsize,
    pub(crate) stats: WireStats,
    closed: AtomicBool,
    /// Milliseconds (on the federation's clock) a frame was last read
    /// off this link — any inbound traffic counts as proof of life.
    last_rx: AtomicU64,
    /// When the last keepalive probe went out, so an idle link is pinged
    /// once per probe window rather than once per tick.
    last_ping: AtomicU64,
}

impl PeerLink {
    fn close_socket(&self) {
        self.closed.store(true, Ordering::SeqCst);
        let _ = self.control.shutdown(Shutdown::Both);
    }
}

/// Registry of live peer links plus the inbound message queue they feed.
pub(crate) struct Links {
    map: Mutex<HashMap<NodeId, Arc<PeerLink>>>,
    incoming_tx: Sender<TransportDelivery>,
    event_cap: usize,
    subs_forwarded: AtomicU64,
    pub(crate) events_forwarded: AtomicU64,
    pub(crate) events_dropped: AtomicU64,
    /// Aggregate transport counters across all peer links, live and
    /// dead (per-link stats die with their link; these persist and feed
    /// the per-codec federation totals).
    pub(crate) wire: WireStats,
    /// Wakes the epoll event loop after an enqueue; `None` on the
    /// threaded transport, where writer threads park on the queues.
    waker: Mutex<Option<Arc<dyn Fn() + Send + Sync>>>,
}

impl Links {
    /// Queue one outgoing message toward `dst`. Control messages always
    /// queue; events are dropped (and counted) when the link's event
    /// queue is at capacity or the link is gone.
    fn enqueue(&self, dst: NodeId, msg: PeerMsg) {
        let link = self.map.lock().get(&dst).cloned();
        let Some(link) = link else {
            if matches!(msg, PeerMsg::EventFwd { .. }) {
                self.events_dropped.fetch_add(1, Ordering::Relaxed);
            }
            return;
        };
        match msg {
            PeerMsg::EventFwd { .. } => {
                if link.queued_events.load(Ordering::Relaxed) >= self.event_cap {
                    self.events_dropped.fetch_add(1, Ordering::Relaxed);
                    link.stats.record_delivery_drop();
                    return;
                }
                link.queued_events.fetch_add(1, Ordering::Relaxed);
                if link.out_tx.try_send(msg).is_err() {
                    link.queued_events.fetch_sub(1, Ordering::Relaxed);
                    self.events_dropped.fetch_add(1, Ordering::Relaxed);
                    link.stats.record_delivery_drop();
                } else {
                    self.events_forwarded.fetch_add(1, Ordering::Relaxed);
                }
            }
            ctrl => {
                if matches!(ctrl, PeerMsg::SubFwd { .. }) {
                    self.subs_forwarded.fetch_add(1, Ordering::Relaxed);
                }
                let _ = link.out_tx.try_send(ctrl);
            }
        }
        // In loop mode nothing parks on the queue; poke the loop so it
        // drains what was just enqueued.
        if let Some(waker) = self.waker.lock().clone() {
            waker();
        }
    }
}

/// The socket-backed [`Transport`]: [`PeerMsg`]s between this broker and
/// its TCP peers.
///
/// `send` never blocks — outgoing messages land on per-link queues
/// drained by writer threads — and `recv` pops what peer reader threads
/// already parsed. The [`Federation`] pump drives a [`BrokerNode`] over
/// this exactly the way `Overlay::run_until_idle` drives one over
/// [`reef_pubsub::SimTransport`].
pub struct TcpTransport {
    links: Arc<Links>,
    incoming: Receiver<TransportDelivery>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("peers", &self.links.map.lock().len())
            .field("inbound_queued", &self.incoming.len())
            .finish()
    }
}

impl TcpTransport {
    /// Like [`Transport::recv`], but parks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<TransportDelivery> {
        self.incoming.recv_timeout(timeout).ok()
    }
}

impl Transport for TcpTransport {
    type Error = WireError;

    /// Queue `msg` toward the peer on link `dst`.
    ///
    /// Lossy for events by design: a full link queue drops the event and
    /// counts it rather than stalling the routing core.
    fn send(&mut self, _src: NodeId, dst: NodeId, msg: PeerMsg) -> Result<(), WireError> {
        self.links.enqueue(dst, msg);
        Ok(())
    }

    fn recv(&mut self) -> Option<TransportDelivery> {
        self.incoming.try_recv().ok()
    }
}

/// A broker's federation layer: the sans-io [`BrokerNode`] routing core,
/// its TCP peer links, and the pump thread that connects the two.
///
/// The [`crate::BrokerServer`] owns one `Federation` and forwards every
/// local subscribe / unsubscribe / publish into it; the federation takes
/// care of advertising subscriptions to peers (covering-pruned), routing
/// remote events into the local [`Broker`]'s subscriber queues, and
/// forwarding local events toward interested peers.
pub struct Federation {
    name: String,
    broker_id: u32,
    broker: Arc<Broker>,
    node: Mutex<BrokerNode>,
    pub(crate) links: Arc<Links>,
    /// Receiving side of the inbound routing queue; the pump thread
    /// drains it on the threaded transport, `Federation::drain_incoming`
    /// in loop mode.
    incoming_rx: Receiver<TransportDelivery>,
    /// The epoll loop's adoption/wake hook, registered in loop mode.
    loop_hook: Mutex<Option<Arc<dyn PeerLoopHook>>>,
    /// Count-based aggregation of identical local filters (never locked
    /// while `node` is held).
    agg: Mutex<SubAggregation>,
    subs_aggregated: AtomicU64,
    next_sub: AtomicU64,
    next_link: AtomicU32,
    events_received: AtomicU64,
    shutdown: Arc<AtomicBool>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    config: FederationConfig,
    /// Milliseconds (on `config.clock`) of the last mesh route refresh.
    last_refresh: AtomicU64,
}

/// One advertised filter shared by every local subscription with an
/// identical filter.
struct AggGroup {
    /// Canonical serialized form of the filter (the aggregation key).
    key: String,
    /// Local wire subscriptions sharing the filter; remote deliveries
    /// fan out to each.
    members: Vec<SubscriptionId>,
}

/// Count-based duplicate-subscription aggregation: identical filters map
/// to one [`GlobalSubId`], advertised once and withdrawn only when the
/// last member unsubscribes.
#[derive(Default)]
struct SubAggregation {
    by_filter: HashMap<String, GlobalSubId>,
    groups: HashMap<GlobalSubId, AggGroup>,
    by_sub: HashMap<SubscriptionId, GlobalSubId>,
}

/// Canonical aggregation key for a filter: its serialized form, which is
/// deterministic (predicates keep their order, values their type tags).
fn filter_key(filter: &Filter) -> String {
    serde_json::to_string(filter).unwrap_or_else(|_| filter.to_string())
}

impl std::fmt::Debug for Federation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Federation")
            .field("name", &self.name)
            .field("broker_id", &self.broker_id)
            .field("peers", &self.links.map.lock().len())
            .finish()
    }
}

impl Federation {
    /// Create a federation layer around `broker` and start its pump
    /// thread. `broker_id` must be unique across the federation.
    ///
    /// The returned federation must be torn down with
    /// [`Federation::shutdown`]: its threads each hold an `Arc` to it, so
    /// merely dropping the caller's handle keeps the pump alive forever.
    /// ([`crate::BrokerServer`] owns its federation and shuts it down as
    /// part of server shutdown.)
    pub fn start(broker: Arc<Broker>, broker_id: u32, config: FederationConfig) -> Arc<Federation> {
        let (incoming_tx, incoming_rx) = channel::unbounded();
        let links = Arc::new(Links {
            map: Mutex::new(HashMap::new()),
            incoming_tx,
            event_cap: config.peer_queue_capacity.max(1),
            subs_forwarded: AtomicU64::new(0),
            events_forwarded: AtomicU64::new(0),
            events_dropped: AtomicU64::new(0),
            wire: WireStats::new(),
            waker: Mutex::new(None),
        });
        let event_loop = config.event_loop;
        let node = if config.mesh {
            BrokerNode::new_mesh(broker_id)
        } else {
            BrokerNode::new(config.covering)
        };
        let federation = Arc::new(Federation {
            name: config.name.clone(),
            broker_id,
            broker,
            node: Mutex::new(node),
            links: Arc::clone(&links),
            incoming_rx: incoming_rx.clone(),
            loop_hook: Mutex::new(None),
            agg: Mutex::new(SubAggregation::default()),
            subs_aggregated: AtomicU64::new(0),
            next_sub: AtomicU64::new(0),
            next_link: AtomicU32::new(LOCAL_NODE.0 + 1),
            events_received: AtomicU64::new(0),
            shutdown: Arc::new(AtomicBool::new(false)),
            threads: Mutex::new(Vec::new()),
            config,
            last_refresh: AtomicU64::new(0),
        });
        // In loop mode the event loop is the pump: it reads peer frames,
        // feeds them through `incoming`, and drains the routing queue
        // inline, so no pump thread is spawned at all.
        if !event_loop {
            let transport = TcpTransport {
                links,
                incoming: incoming_rx,
            };
            let pump_self = Arc::clone(&federation);
            let handle = std::thread::Builder::new()
                .name("reefd-federation".into())
                .spawn(move || pump_self.pump(transport))
                .expect("spawn federation pump");
            federation.threads.lock().push(handle);
        }
        federation
    }

    /// Register the epoll event loop's hook: dialed peer sockets are
    /// adopted onto the loop and every link-queue enqueue wakes it. Must
    /// be called before any peer is dialed in loop mode.
    pub(crate) fn set_loop_hook(&self, hook: Arc<dyn PeerLoopHook>) {
        let waker_hook = Arc::clone(&hook);
        *self.links.waker.lock() = Some(Arc::new(move || waker_hook.wake()));
        *self.loop_hook.lock() = Some(hook);
    }

    /// The live link registered under `node`, if any.
    pub(crate) fn link(&self, node: NodeId) -> Option<Arc<PeerLink>> {
        self.links.map.lock().get(&node).cloned()
    }

    /// The broker name announced to peers.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// This broker's federation-wide id.
    pub fn broker_id(&self) -> u32 {
        self.broker_id
    }

    /// Number of live peer links.
    pub fn peer_count(&self) -> usize {
        self.links.map.lock().len()
    }

    /// Routing and peer-link counters.
    pub fn snapshot(&self) -> FederationStatsSnapshot {
        let (routing_entries, advertisements, alternates, reroutes, duplicates) = {
            let node = self.node.lock();
            (
                node.routing_entries(),
                node.advertisement_count(),
                node.mesh_alternates(),
                node.mesh_reroutes(),
                node.mesh_duplicates_suppressed(),
            )
        };
        let wire = self.links.wire.snapshot();
        FederationStatsSnapshot {
            broker_id: self.broker_id,
            peers: self.links.map.lock().len() as u64,
            routing_entries: routing_entries as u64,
            advertisements: advertisements as u64,
            subs_forwarded: self.links.subs_forwarded.load(Ordering::Relaxed),
            subs_aggregated: self.subs_aggregated.load(Ordering::Relaxed),
            events_forwarded: self.links.events_forwarded.load(Ordering::Relaxed),
            events_received: self.events_received.load(Ordering::Relaxed),
            events_dropped: self.links.events_dropped.load(Ordering::Relaxed),
            mesh_alternates: alternates as u64,
            mesh_reroutes: reroutes,
            mesh_duplicates_suppressed: duplicates,
            json: wire.json,
            binary: wire.binary,
        }
    }

    /// The routing core's current knowledge: subscription ids and their
    /// filters, rendered for diagnostics.
    pub fn routing_knowledge(&self) -> Vec<(GlobalSubId, String)> {
        self.node
            .lock()
            .knowledge()
            .map(|(sub, filter)| (sub, filter.to_string()))
            .collect()
    }

    /// Transport counters per live peer link.
    pub fn peer_stats(&self) -> Vec<PeerStatsSnapshot> {
        self.links
            .map
            .lock()
            .values()
            .map(|link| PeerStatsSnapshot {
                broker: link.broker_name.clone(),
                addr: link.peer_addr.clone(),
                link: link.node.0,
                codec: link.codec.name().to_owned(),
                wire: link.stats.snapshot(),
            })
            .collect()
    }

    /// Dial `addr`, perform the `PeerHello`/`PeerWelcome` handshake and
    /// register the resulting peer link.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the peer is unreachable, or a protocol /
    /// version error when the remote end is not a compatible broker.
    pub fn connect_peer(self: &Arc<Self>, addr: &str) -> Result<NodeId, WireError> {
        if self.shutdown.load(Ordering::SeqCst) {
            return Err(WireError::Closed);
        }
        let codec = self.config.codec.codec();
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
        let mut hello_lane = stream.try_clone()?;
        // The version byte of this frame is what the acceptor negotiates
        // the link's codec from.
        codec
            .encode_client(&ClientFrame {
                corr: 0,
                request: Request::PeerHello {
                    version: codec.version(),
                    broker: self.name.clone(),
                    broker_id: self.broker_id,
                },
            })?
            .write_to(&mut hello_lane)?;
        // Read the welcome straight off the socket, unbuffered: any bytes
        // the peer sends right after it (advertisement sync) must stay in
        // the kernel buffer so an adopting event loop sees them too.
        let frame = Frame::read_from_capped(&mut hello_lane, self.config.max_frame)?
            .ok_or(WireError::Closed)?;
        let (peer_name, peer_broker_id) = match codec.decode_server(&frame)? {
            ServerFrame::Reply {
                response:
                    Response::PeerWelcome {
                        version,
                        broker,
                        broker_id,
                    },
                ..
            } => {
                if version != codec.version() {
                    return Err(WireError::VersionMismatch {
                        ours: codec.version(),
                        theirs: version,
                    });
                }
                (broker, broker_id)
            }
            ServerFrame::Reply {
                response: Response::Error { message },
                ..
            } => {
                return Err(WireError::Remote(message));
            }
            other => {
                return Err(WireError::Protocol(format!(
                    "unexpected PeerHello reply: {other:?}"
                )));
            }
        };
        stream.set_read_timeout(None)?;
        let (node, link) = self.register_link(
            stream,
            peer_name,
            peer_broker_id,
            addr.to_owned(),
            self.config.codec,
            Some(addr.to_owned()),
        )?;
        // Threaded transport: a dedicated reader thread parks on the
        // socket. Loop mode: the event loop adopted the socket inside
        // `register_link` and reads it on readiness.
        if !self.config.event_loop {
            let reader_self = Arc::clone(self);
            let reader_link = Arc::clone(&link);
            let reader = BufReader::new(hello_lane);
            let handle = std::thread::Builder::new()
                .name(format!("reefd-peer-read-{addr}"))
                .spawn(move || reader_self.peer_reader(reader_link, reader))
                .expect("spawn peer reader");
            self.track_thread(handle);
        }
        // A shutdown that raced this dial has already taken the link map
        // snapshot it will close; close the newcomer ourselves.
        if self.shutdown.load(Ordering::SeqCst) {
            self.peer_disconnected(node);
            return Err(WireError::Closed);
        }
        Ok(node)
    }

    /// Like [`Federation::connect_peer`], retrying while the peer refuses
    /// connections (it may still be starting up).
    ///
    /// # Errors
    ///
    /// The last dial error once `attempts` are exhausted.
    pub fn connect_peer_with_retry(
        self: &Arc<Self>,
        addr: &str,
        attempts: u32,
        delay: Duration,
    ) -> Result<NodeId, WireError> {
        let mut last = None;
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(delay);
            }
            match self.connect_peer(addr) {
                Ok(node) => return Ok(node),
                Err(WireError::Io(e)) => last = Some(WireError::Io(e)),
                // Protocol-level failures will not fix themselves.
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or(WireError::Closed))
    }

    /// Adopt an inbound connection that sent `PeerHello` as a peer link.
    ///
    /// The caller (the server's connection reader) must already have
    /// replied `PeerWelcome` on the socket; from here on, the link's
    /// writer thread owns all writes. The caller keeps reading frames and
    /// feeds them through [`Federation::incoming`].
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the socket cannot be cloned.
    pub fn adopt_inbound(
        self: &Arc<Self>,
        stream: TcpStream,
        peer_broker: String,
        peer_broker_id: u32,
        peer_addr: String,
        codec: CodecKind,
    ) -> Result<NodeId, WireError> {
        let (node, _link) =
            self.register_link(stream, peer_broker, peer_broker_id, peer_addr, codec, None)?;
        Ok(node)
    }

    /// Like [`Federation::adopt_inbound`], returning the link handle —
    /// the event loop upgrading a client connection in place keeps it to
    /// drain the link's outgoing queue itself.
    pub(crate) fn adopt_inbound_link(
        self: &Arc<Self>,
        stream: TcpStream,
        peer_broker: String,
        peer_broker_id: u32,
        peer_addr: String,
        codec: CodecKind,
    ) -> Result<(NodeId, Arc<PeerLink>), WireError> {
        self.register_link(stream, peer_broker, peer_broker_id, peer_addr, codec, None)
    }

    /// Feed one message read off peer link `from` into the routing pump.
    /// Any inbound frame also refreshes the link's keepalive clock.
    pub fn incoming(&self, from: NodeId, msg: PeerMsg) {
        if let Some(link) = self.links.map.lock().get(&from) {
            link.last_rx.store(self.now_ms(), Ordering::Relaxed);
        }
        let _ = self.links.incoming_tx.send(TransportDelivery {
            src: from,
            dst: LOCAL_NODE,
            msg,
        });
    }

    /// Milliseconds on the federation's injected clock.
    fn now_ms(&self) -> u64 {
        self.config.clock.now_ms()
    }

    /// Periodic maintenance, called from the routing pump (threaded
    /// transport) or the event loop (epoll transport): keepalive probes
    /// and dead-link detection on every peer link, plus the mesh route
    /// refresh. Cheap when nothing is due.
    pub(crate) fn tick(self: &Arc<Self>) {
        self.maybe_refresh();
        let Some(timeout) = self.config.peer_timeout else {
            return;
        };
        let timeout_ms = (timeout.as_millis() as u64).max(1);
        // Probe at a third of the deadline: a live peer gets two more
        // chances to answer before the link is declared dead.
        let probe_ms = (timeout_ms / 3).max(1);
        let now = self.now_ms();
        let links: Vec<Arc<PeerLink>> = self.links.map.lock().values().cloned().collect();
        for link in links {
            let idle = now.saturating_sub(link.last_rx.load(Ordering::Relaxed));
            if idle >= timeout_ms {
                // Silent past the deadline: dead. Tear it down now —
                // this is what promotes failover routes in bounded time
                // instead of waiting for a write error.
                link.stats.record_error();
                self.peer_disconnected(link.node);
            } else if idle >= probe_ms {
                let last_ping = link.last_ping.load(Ordering::Relaxed);
                if now.saturating_sub(last_ping) >= probe_ms {
                    link.last_ping.store(now, Ordering::Relaxed);
                    self.links.enqueue(link.node, PeerMsg::Ping { nonce: now });
                }
            }
        }
    }

    /// Re-send the full advertisement set when the mesh refresh interval
    /// elapsed (self-stabilization against missed diffs).
    fn maybe_refresh(&self) {
        if !self.config.mesh {
            return;
        }
        let interval = self.config.route_refresh.as_millis() as u64;
        if interval == 0 {
            return;
        }
        let now = self.now_ms();
        let last = self.last_refresh.load(Ordering::Relaxed);
        if now.saturating_sub(last) < interval {
            return;
        }
        if self
            .last_refresh
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        let messages = self.node.lock().refresh();
        self.dispatch(messages);
    }

    /// Record a local wire subscription in the routing core and advertise
    /// it to peers.
    ///
    /// Identical filters aggregate: only the first subscription with a
    /// given filter enters the routing core (and is advertised); later
    /// ones join its group and merely bump the reference count.
    pub fn local_subscribe(&self, sub: SubscriptionId, filter: Filter) {
        let key = filter_key(&filter);
        {
            let mut agg = self.agg.lock();
            if let Some(&gsub) = agg.by_filter.get(&key) {
                let group = agg.groups.get_mut(&gsub).expect("group exists for key");
                group.members.push(sub);
                agg.by_sub.insert(sub, gsub);
                self.subs_aggregated.fetch_add(1, Ordering::Relaxed);
                return;
            }
            let gsub = GlobalSubId(
                ((self.broker_id as u64) << 32) | (self.next_sub.fetch_add(1, Ordering::Relaxed)),
            );
            agg.by_filter.insert(key.clone(), gsub);
            agg.groups.insert(
                gsub,
                AggGroup {
                    key,
                    members: vec![sub],
                },
            );
            agg.by_sub.insert(sub, gsub);
            // Fall through with `agg` released: the routing core is never
            // locked while the aggregation table is held.
            let gsub_for_node = gsub;
            drop(agg);
            let messages =
                self.node
                    .lock()
                    .subscribe_local(gsub_for_node, ClientId(gsub_for_node.0), filter);
            self.dispatch(messages);
        }
    }

    /// Withdraw a local wire subscription. The shared advertisement is
    /// cancelled only when the last subscription of its group goes.
    pub fn local_unsubscribe(&self, sub: SubscriptionId) {
        let gsub = {
            let mut agg = self.agg.lock();
            let Some(gsub) = agg.by_sub.remove(&sub) else {
                return;
            };
            let Some(group) = agg.groups.get_mut(&gsub) else {
                return;
            };
            group.members.retain(|member| *member != sub);
            if !group.members.is_empty() {
                return;
            }
            let key = group.key.clone();
            agg.groups.remove(&gsub);
            agg.by_filter.remove(&key);
            gsub
        };
        let messages = self.node.lock().unsubscribe_local(gsub);
        self.dispatch(messages);
    }

    /// Forward a locally published event toward interested peers. Local
    /// delivery has already happened inside [`Broker::publish`]; only the
    /// peer forwards computed by the routing core are acted on.
    pub fn local_publish(&self, event: Event, outcome: &PublishOutcome) {
        if self.links.map.lock().is_empty() {
            return;
        }
        let published = PublishedEvent {
            id: outcome.id,
            published_at: outcome.published_at,
            event,
        };
        let output = self.node.lock().publish_local(published);
        self.dispatch(output.messages);
    }

    /// Tear down a dead peer link: forget its advertisements and
    /// re-advertise to the remaining peers. When the link was dialed and
    /// [`FederationConfig::peer_retry`] is on, a redial loop with capped
    /// exponential backoff takes over (re-running the full `PeerHello`
    /// handshake, codec negotiation included, on success).
    pub fn peer_disconnected(self: &Arc<Self>, node: NodeId) {
        let Some(link) = self.links.map.lock().remove(&node) else {
            return;
        };
        link.close_socket();
        link.stats.record_close();
        self.links.wire.record_close();
        let messages = self.node.lock().remove_neighbor(node);
        self.dispatch(messages);
        if self.config.peer_retry && !self.shutdown.load(Ordering::SeqCst) {
            if let Some(addr) = &link.dialed_addr {
                self.spawn_redial(addr.clone());
            }
        }
    }

    /// Keep redialing `addr` until the link is back or the federation
    /// shuts down. Backoff doubles from [`REDIAL_INITIAL`] up to
    /// [`REDIAL_CAP`], sleeping in slices so shutdown stays prompt.
    fn spawn_redial(self: &Arc<Self>, addr: String) {
        let federation = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("reefd-peer-redial-{addr}"))
            .spawn(move || {
                let mut backoff = REDIAL_INITIAL;
                loop {
                    let mut slept = Duration::ZERO;
                    while slept < backoff {
                        if federation.shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        let slice = REDIAL_SLICE.min(backoff - slept);
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                    if federation.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    match federation.connect_peer(&addr) {
                        Ok(_) => return,
                        Err(_) => backoff = (backoff * 2).min(REDIAL_CAP),
                    }
                }
            })
            .expect("spawn peer redial thread");
        self.track_thread(handle);
    }

    /// Stop the pump, close every peer link and join all threads.
    pub fn shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        for link in self.links.map.lock().values() {
            link.close_socket();
        }
        let threads: Vec<JoinHandle<()>> = std::mem::take(&mut *self.threads.lock());
        for handle in threads {
            let _ = handle.join();
        }
    }

    /// Keep `handle` for the shutdown join, first dropping handles of
    /// threads that already finished — a flapping `--peer-retry` link
    /// spawns a redial, reader and writer thread per reconnect, and a
    /// long-lived daemon must not hoard one handle per historical link.
    fn track_thread(&self, handle: JoinHandle<()>) {
        let mut threads = self.threads.lock();
        threads.retain(|h| !h.is_finished());
        threads.push(handle);
    }

    fn register_link(
        self: &Arc<Self>,
        stream: TcpStream,
        peer_broker: String,
        peer_broker_id: u32,
        peer_addr: String,
        codec: CodecKind,
        dialed_addr: Option<String>,
    ) -> Result<(NodeId, Arc<PeerLink>), WireError> {
        stream.set_write_timeout(Some(self.config.write_timeout))?;
        let writer = stream.try_clone()?;
        let control = stream.try_clone()?;
        let (out_tx, out_rx) = channel::unbounded();
        let node = NodeId(self.next_link.fetch_add(1, Ordering::Relaxed));
        let dialed = dialed_addr.is_some();
        let now = self.now_ms();
        let link = Arc::new(PeerLink {
            node,
            broker_name: peer_broker,
            peer_addr,
            codec,
            dialed_addr,
            writer: Mutex::new(writer),
            control,
            out_tx,
            out_rx,
            queued_events: AtomicUsize::new(0),
            stats: WireStats::new(),
            closed: AtomicBool::new(false),
            last_rx: AtomicU64::new(now),
            last_ping: AtomicU64::new(now),
        });
        link.stats.record_open();
        self.links.wire.record_open();
        self.links.map.lock().insert(node, Arc::clone(&link));
        if self.config.event_loop {
            // The event loop owns the socket: hand it a dialed stream
            // (an inbound one is already registered there — the loop is
            // the caller upgrading a client connection in place).
            if dialed {
                let hook = self.loop_hook.lock().clone();
                if let Some(hook) = hook {
                    hook.adopt_socket(node, stream);
                    hook.wake();
                }
            }
        } else {
            let writer_self = Arc::clone(self);
            let writer_link = Arc::clone(&link);
            let writer_rx = link.out_rx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("reefd-peer-write-{}", link.peer_addr))
                .spawn(move || writer_self.peer_writer(writer_link, writer_rx))
                .expect("spawn peer writer");
            self.track_thread(handle);
        }
        // Bring the new peer up to date with everything already known.
        let sync = {
            let mut routing = self.node.lock();
            if self.config.mesh {
                routing.add_mesh_neighbor(node, peer_broker_id)
            } else {
                routing.add_neighbor(node)
            }
        };
        self.dispatch(sync);
        Ok((node, link))
    }

    /// The per-link writer: outgoing queue → socket, one frame at a time.
    fn peer_writer(self: Arc<Self>, link: Arc<PeerLink>, out_rx: Receiver<PeerMsg>) {
        loop {
            if self.shutdown.load(Ordering::SeqCst) || link.closed.load(Ordering::SeqCst) {
                return;
            }
            let msg = match out_rx.recv_timeout(PUMP_PARK) {
                Ok(msg) => msg,
                Err(channel::RecvTimeoutError::Timeout) => continue,
                Err(channel::RecvTimeoutError::Disconnected) => return,
            };
            let is_event = matches!(msg, PeerMsg::EventFwd { .. });
            if is_event {
                link.queued_events.fetch_sub(1, Ordering::Relaxed);
            }
            let frame = match link.codec.codec().encode_peer(&msg) {
                Ok(frame) => frame,
                Err(_) => {
                    link.stats.record_error();
                    continue;
                }
            };
            let written = {
                let mut writer = link.writer.lock();
                frame.write_to(&mut *writer)
            };
            match written {
                Ok(n) => {
                    link.stats.record_frame_out(frame.version, n);
                    self.links.wire.record_frame_out(frame.version, n);
                }
                Err(_) => {
                    // Write failed or timed out: the peer is stalled or
                    // gone. Count the loss and tear the link down.
                    if is_event {
                        self.links.events_dropped.fetch_add(1, Ordering::Relaxed);
                        link.stats.record_delivery_drop();
                    }
                    link.stats.record_error();
                    self.peer_disconnected(link.node);
                    return;
                }
            }
        }
    }

    /// The per-link reader thread body used for *outbound* (dialed)
    /// peers.
    fn peer_reader(self: Arc<Self>, link: Arc<PeerLink>, mut reader: BufReader<impl Read>) {
        self.read_loop(&link, &mut reader);
        self.peer_disconnected(link.node);
    }

    /// Run an inbound peer link's read loop on the caller's thread (the
    /// server's connection reader, after it upgraded the connection and
    /// registered the link with [`Federation::adopt_inbound`]). Returns
    /// when the link dies, after tearing it down.
    pub(crate) fn run_inbound_reader(
        self: &Arc<Self>,
        node: NodeId,
        mut reader: BufReader<TcpStream>,
    ) {
        let link = self.links.map.lock().get(&node).cloned();
        if let Some(link) = link {
            self.read_loop(&link, &mut reader);
        }
        self.peer_disconnected(node);
    }

    /// The shared peer read loop: frames off the socket, through
    /// [`Federation::incoming`], until the link closes or a frame fails
    /// to parse. Dialed and accepted peer links run the identical loop.
    fn read_loop(&self, link: &PeerLink, reader: &mut BufReader<impl Read>) {
        loop {
            if self.shutdown.load(Ordering::SeqCst) || link.closed.load(Ordering::SeqCst) {
                return;
            }
            let frame = match Frame::read_from_capped(reader, self.config.max_frame) {
                Ok(Some(frame)) => frame,
                Ok(None) => return,
                Err(_) => {
                    link.stats.record_error();
                    return;
                }
            };
            link.stats.record_frame_in(frame.version, frame.wire_len());
            self.links
                .wire
                .record_frame_in(frame.version, frame.wire_len());
            // The link's codec was fixed at handshake; `decode_peer`
            // rejects any frame whose version byte disagrees.
            match link.codec.codec().decode_peer(&frame) {
                Ok(msg) => self.incoming(link.node, msg),
                Err(_) => {
                    link.stats.record_error();
                    return;
                }
            }
        }
    }

    /// The routing pump: inbound messages → [`BrokerNode::handle`] →
    /// local subscriber queues + outgoing link queues.
    fn pump(self: Arc<Self>, transport: TcpTransport) {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            self.tick();
            let Some(delivery) = transport.recv_timeout(PUMP_PARK) else {
                continue;
            };
            self.process_delivery(delivery);
        }
    }

    /// Drain the inbound routing queue inline. This is the loop-mode
    /// replacement for the pump thread: the event loop calls it after
    /// feeding freshly read peer frames through [`Federation::incoming`].
    pub(crate) fn drain_incoming(&self) {
        while let Ok(delivery) = self.incoming_rx.try_recv() {
            self.process_delivery(delivery);
        }
    }

    /// Route one inbound peer message: through [`BrokerNode::handle`],
    /// then local subscriber queues and outgoing link queues.
    fn process_delivery(&self, delivery: TransportDelivery) {
        if matches!(delivery.msg, PeerMsg::EventFwd { .. }) {
            self.events_received.fetch_add(1, Ordering::Relaxed);
        }
        let output = self.node.lock().handle(delivery.src, delivery.msg);
        for (client, event) in output.deliveries {
            // ClientId in the routing core is the GlobalSubId of an
            // aggregation group; fan the event out to every member
            // subscription — clones of one shared `Arc`, the event is
            // stored once however many members there are.
            let members = {
                let agg = self.agg.lock();
                agg.groups
                    .get(&GlobalSubId(client.0))
                    .map(|group| group.members.clone())
            };
            // A `None` here raced an unsubscribe: the group is gone
            // and the event has nowhere local to go.
            if let Some(members) = members {
                let event = Arc::new(event);
                for sub in members {
                    let _ = self.broker.deliver(sub, Arc::clone(&event));
                }
            }
        }
        self.dispatch(output.messages);
    }

    fn dispatch(&self, messages: Vec<(NodeId, PeerMsg)>) {
        for (to, msg) in messages {
            self.links.enqueue(to, msg);
        }
    }
}

/// Mint a federation-wide broker id from the broker's identity and the
/// current time. Collisions are possible in principle but vanishingly
/// unlikely for realistic federation sizes.
pub fn mint_broker_id(name: &str, salt: u64) -> u32 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut hasher);
    salt.hash(&mut hasher);
    std::process::id().hash(&mut hasher);
    if let Ok(elapsed) = std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        elapsed.subsec_nanos().hash(&mut hasher);
        elapsed.as_secs().hash(&mut hasher);
    }
    hasher.finish() as u32
}
