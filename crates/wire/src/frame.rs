//! Length-prefixed, versioned framing.
//!
//! Every message on a reef-wire socket travels as one frame:
//!
//! ```text
//! +----------------+---------+------------------------+
//! | length: u32 BE | version | payload                |
//! +----------------+---------+------------------------+
//! ```
//!
//! `length` counts the version byte plus the payload, so a receiver can
//! skip unknown frames wholesale. The **version byte selects the codec**
//! that produced the payload:
//!
//! * **v1 (JSON)** — the payload is the JSON encoding of one
//!   [`crate::protocol::Request`] or [`crate::protocol::ServerMessage`],
//!   exactly as the first protocol generation shipped it. Debuggable
//!   with `nc`/`tcpdump`, byte-compatible with old clients, no
//!   correlation ids: replies pair with requests by order.
//! * **v2 (binary)** — the payload is the compact tag/varint encoding of
//!   one [`crate::protocol::ClientFrame`] (a correlation id plus the
//!   request) or [`crate::protocol::ServerFrame`] (a reply echoing the
//!   request's correlation id, a delivery, or an unsolicited `FeedChanged`
//!   auto-subscription notice). See [`crate::codec`] for the byte-level
//!   layout and the full v2 tag table.
//!
//! # Codec negotiation
//!
//! The codec is negotiated **per connection** by the version byte of the
//! first frame (the `Hello` or `PeerHello`): the server adopts whatever
//! codec that frame was encoded with and answers in it, and every later
//! frame in either direction must carry the same version byte — a
//! mid-stream switch is a protocol error that closes the connection. A
//! frame with a version byte the server does not recognise is answered
//! with a v1 JSON error (the one encoding every client can read) and the
//! connection is closed. v1 peers therefore keep working against v2
//! builds unchanged: nothing about the v1 byte stream has moved.
//!
//! # Correlation ids
//!
//! On v2 connections every request carries a client-assigned `corr` id,
//! and its reply echoes that id. Responses are thereby decoupled from
//! deliveries *and* from request order on the socket, which is what lets
//! [`crate::Client`] pipeline requests ([`crate::Client::publish_nowait`])
//! and a future event-loop transport reply out of order. Ids are scoped
//! to the connection; the client picks them (the stock client uses a
//! counter) and the server treats them as opaque.

use crate::error::WireError;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Frame version byte of the JSON codec (protocol v1), which is also the
/// version this build's [`Frame::encode`]/[`Frame::decode`] speak.
pub const PROTOCOL_V1_JSON: u8 = 1;

/// Frame version byte of the compact binary codec (protocol v2).
pub const PROTOCOL_V2_BINARY: u8 = 2;

/// Version of the legacy lock-step JSON protocol. Kept as the version
/// [`Frame::encode`] stamps so pre-codec call sites stay byte-compatible.
pub const PROTOCOL_VERSION: u8 = PROTOCOL_V1_JSON;

/// Upper bound on a frame's length field. Protects the server from a
/// garbage length prefix allocating gigabytes.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// One decoded frame: the protocol version it was sent under and its
/// payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Protocol version from the frame header (selects the codec).
    pub version: u8,
    /// Payload bytes in the codec named by `version`.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Frame a serializable message as v1 JSON (the legacy encoding; v2
    /// frames are built by [`crate::codec::BinaryCodec`]).
    pub fn encode<T: Serialize>(message: &T) -> Result<Frame, WireError> {
        Ok(Frame {
            version: PROTOCOL_VERSION,
            payload: serde_json::to_vec(message)?,
        })
    }

    /// Parse the payload as v1 JSON `T`, first checking the version byte
    /// (a v2 frame must go through its codec instead).
    pub fn decode<T: Deserialize>(&self) -> Result<T, WireError> {
        if self.version != PROTOCOL_VERSION {
            return Err(WireError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs: self.version,
            });
        }
        Ok(serde_json::from_slice(&self.payload)?)
    }

    /// Bytes this frame occupies on the wire (header included).
    pub fn wire_len(&self) -> usize {
        4 + 1 + self.payload.len()
    }

    /// Write the frame to `w`. Returns the number of bytes written.
    pub fn write_to(&self, w: &mut impl Write) -> Result<usize, WireError> {
        let body_len = 1 + self.payload.len();
        if body_len > MAX_FRAME_LEN {
            return Err(WireError::FrameTooLarge(body_len));
        }
        w.write_all(&(body_len as u32).to_be_bytes())?;
        w.write_all(&[self.version])?;
        w.write_all(&self.payload)?;
        w.flush()?;
        Ok(4 + body_len)
    }

    /// Read one frame from `r`.
    ///
    /// Returns `Ok(None)` on clean end-of-stream (EOF before the first
    /// header byte); a partial header or body is a protocol error.
    pub fn read_from(r: &mut impl Read) -> Result<Option<Frame>, WireError> {
        Frame::read_from_capped(r, MAX_FRAME_LEN)
    }

    /// Like [`Frame::read_from`], but rejecting any frame whose length
    /// prefix exceeds `max_frame` — checked **before** the payload buffer
    /// is reserved, so a hostile 4 GiB length costs nothing. `max_frame`
    /// is clamped to [`MAX_FRAME_LEN`], the protocol ceiling.
    pub fn read_from_capped(
        r: &mut impl Read,
        max_frame: usize,
    ) -> Result<Option<Frame>, WireError> {
        let cap = max_frame.min(MAX_FRAME_LEN);
        let mut header = [0u8; 4];
        // Distinguish "no more frames" from "died mid-frame".
        let mut filled = 0;
        while filled < header.len() {
            match r.read(&mut header[filled..]) {
                Ok(0) if filled == 0 => return Ok(None),
                Ok(0) => return Err(WireError::Protocol("EOF inside frame header".into())),
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(WireError::Io(e)),
            }
        }
        let body_len = u32::from_be_bytes(header) as usize;
        if body_len == 0 {
            return Err(WireError::Protocol("zero-length frame".into()));
        }
        if body_len > cap {
            return Err(WireError::FrameTooLarge(body_len));
        }
        let mid_frame_eof = |e: std::io::Error| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => {
                WireError::Protocol("EOF inside frame body".into())
            }
            _ => WireError::Io(e),
        };
        let mut version = [0u8; 1];
        r.read_exact(&mut version).map_err(mid_frame_eof)?;
        let mut payload = vec![0u8; body_len - 1];
        r.read_exact(&mut payload).map_err(mid_frame_eof)?;
        Ok(Some(Frame {
            version: version[0],
            payload,
        }))
    }
}

/// Incremental frame parser for nonblocking transports.
///
/// A readiness-driven reader hands whatever bytes the socket had —
/// which may split a frame at any byte boundary, or carry several frames
/// at once — to [`FrameDecoder::extend`], then pops complete frames with
/// [`FrameDecoder::next_frame`]. The decoder produces exactly the frames
/// [`Frame::read_from`] would have read from the concatenated stream,
/// and raises the same errors (zero-length frame, oversized length
/// prefix) as soon as the offending header is complete.
///
/// # Examples
///
/// ```
/// use reef_wire::frame::{Frame, FrameDecoder};
///
/// let frame = Frame::encode(&vec![1u32, 2, 3]).unwrap();
/// let mut bytes = Vec::new();
/// frame.write_to(&mut bytes).unwrap();
/// let mut decoder = FrameDecoder::new();
/// let (head, tail) = bytes.split_at(3); // split mid-header
/// decoder.extend(head);
/// assert!(decoder.next_frame().unwrap().is_none());
/// decoder.extend(tail);
/// assert_eq!(decoder.next_frame().unwrap(), Some(frame));
/// ```
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by returned frames; compacted
    /// away once the parsed prefix grows past a threshold.
    pos: usize,
    /// Largest accepted frame body; length prefixes past this error
    /// before any payload byte is buffered into a frame.
    max_frame: usize,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder::new()
    }
}

/// Compact the decoder's buffer once this many consumed bytes accumulate.
const DECODER_COMPACT_THRESHOLD: usize = 64 * 1024;

impl FrameDecoder {
    /// An empty decoder accepting frames up to [`MAX_FRAME_LEN`].
    pub fn new() -> FrameDecoder {
        FrameDecoder::with_max_frame(MAX_FRAME_LEN)
    }

    /// An empty decoder rejecting frames whose length prefix exceeds
    /// `max_frame` (clamped to [`MAX_FRAME_LEN`], the protocol ceiling).
    /// The check runs as soon as the 4-byte header is complete — before
    /// the payload is copied out — so a hostile length never turns into
    /// an allocation.
    pub fn with_max_frame(max_frame: usize) -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            max_frame: max_frame.min(MAX_FRAME_LEN),
        }
    }

    /// Append bytes read off the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a returned frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pop the next complete frame, if the buffer holds one.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`WireError::Protocol`] on a zero-length frame and
    /// [`WireError::FrameTooLarge`] on an oversized length prefix — the
    /// stream is corrupt and the connection should be dropped, exactly as
    /// [`Frame::read_from`] would decide.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let pending = &self.buf[self.pos..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let body_len =
            u32::from_be_bytes([pending[0], pending[1], pending[2], pending[3]]) as usize;
        if body_len == 0 {
            return Err(WireError::Protocol("zero-length frame".into()));
        }
        if body_len > self.max_frame {
            return Err(WireError::FrameTooLarge(body_len));
        }
        if pending.len() < 4 + body_len {
            return Ok(None);
        }
        let version = pending[4];
        let payload = pending[5..4 + body_len].to_vec();
        self.pos += 4 + body_len;
        if self.pos >= DECODER_COMPACT_THRESHOLD {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(Some(Frame { version, payload }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips_through_a_buffer() {
        let frame = Frame::encode(&vec![1u32, 2, 3]).unwrap();
        let mut buf = Vec::new();
        let written = frame.write_to(&mut buf).unwrap();
        assert_eq!(written, buf.len());
        assert_eq!(written, frame.wire_len());
        let back = Frame::read_from(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(back, frame);
        let decoded: Vec<u32> = back.decode().unwrap();
        assert_eq!(decoded, vec![1, 2, 3]);
    }

    #[test]
    fn clean_eof_is_none() {
        let empty: &[u8] = &[];
        assert!(Frame::read_from(&mut &*empty).unwrap().is_none());
    }

    #[test]
    fn truncated_header_is_a_protocol_error() {
        let bytes: &[u8] = &[0, 0];
        assert!(matches!(
            Frame::read_from(&mut &*bytes),
            Err(WireError::Protocol(_))
        ));
    }

    #[test]
    fn wrong_version_is_rejected_at_decode() {
        let mut frame = Frame::encode(&42u64).unwrap();
        frame.version = PROTOCOL_VERSION + 1;
        assert!(matches!(
            frame.decode::<u64>(),
            Err(WireError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn decoder_reassembles_byte_by_byte() {
        let frames = [
            Frame::encode(&vec![1u32, 2, 3]).unwrap(),
            Frame {
                version: PROTOCOL_V2_BINARY,
                payload: vec![0xAB; 300],
            },
            Frame::encode(&"tail").unwrap(),
        ];
        let mut stream = Vec::new();
        for frame in &frames {
            frame.write_to(&mut stream).unwrap();
        }
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        for byte in stream {
            decoder.extend(&[byte]);
            while let Some(frame) = decoder.next_frame().unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn decoder_rejects_corrupt_headers() {
        let mut decoder = FrameDecoder::new();
        decoder.extend(&[0, 0, 0, 0]);
        assert!(matches!(decoder.next_frame(), Err(WireError::Protocol(_))));
        let mut decoder = FrameDecoder::new();
        decoder.extend(&u32::MAX.to_be_bytes());
        assert!(matches!(
            decoder.next_frame(),
            Err(WireError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn configured_cap_rejects_frames_the_ceiling_would_accept() {
        let frame = Frame::encode(&vec![0u8; 1024]).unwrap();
        let mut buf = Vec::new();
        frame.write_to(&mut buf).unwrap();
        assert!(matches!(
            Frame::read_from_capped(&mut buf.as_slice(), 64),
            Err(WireError::FrameTooLarge(_))
        ));
        let mut decoder = FrameDecoder::with_max_frame(64);
        decoder.extend(&buf);
        assert!(matches!(
            decoder.next_frame(),
            Err(WireError::FrameTooLarge(_))
        ));
        // The same bytes pass untouched at the protocol ceiling.
        assert_eq!(Frame::read_from(&mut buf.as_slice()).unwrap(), Some(frame));
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        buf.push(PROTOCOL_VERSION);
        assert!(matches!(
            Frame::read_from(&mut buf.as_slice()),
            Err(WireError::FrameTooLarge(_))
        ));
    }
}
