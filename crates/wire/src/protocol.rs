//! The request/response/delivery vocabulary of the wire protocol.
//!
//! Three enums cross the socket, encoded by the connection's negotiated
//! [`crate::codec::WireCodec`] inside [`crate::frame::Frame`]s:
//!
//! * [`Request`] — client → server;
//! * [`Response`] — server → client, exactly one per request;
//! * [`Deliver`] — server → client, pushed asynchronously whenever a
//!   published event matches one of the connection's subscriptions.
//!
//! On the wire, requests travel as [`ClientFrame`]s (a client-assigned
//! correlation id plus the request) and everything the server sends as
//! [`ServerFrame`]s (a reply echoing its request's correlation id, or a
//! delivery), so responses are decoupled from deliveries *and* from
//! request order. The v1 JSON codec is the exception, for byte
//! compatibility with old clients: it strips the correlation id
//! (requests go out as bare [`Request`] JSON, server traffic as
//! [`ServerMessage`] JSON) and pairing falls back to request order.
//! The payload types ([`Event`], [`Filter`], [`PublishedEvent`],
//! [`ClickBatch`]) are the workspace's own — the wire reuses their serde
//! impls rather than inventing parallel DTOs.
//!
//! # Peer links
//!
//! Brokers federate over the same port clients connect to. A dialing
//! broker's first frame is [`Request::PeerHello`] instead of
//! [`Request::Hello`]; the server answers [`Response::PeerWelcome`] and
//! both sides *upgrade* the connection: every subsequent frame in either
//! direction is one [`reef_pubsub::PeerMsg`] — the exact message type the
//! sans-io [`reef_pubsub::BrokerNode`] routing core consumes and emits
//! (subscription forward/cancel with covering-pruned advertisements,
//! event forward with hop count). Versioning rides on the frame header
//! plus the version field both `PeerHello` and `PeerWelcome` carry.

use reef_attention::{ClickBatch, UploadReceipt};
use reef_core::AutoSubMode;
use reef_pubsub::{BrokerStatsSnapshot, Event, EventId, Filter, PublishedEvent, SubscriptionId};
use reef_simweb::UserId;
use serde::{Deserialize, Serialize};

use crate::stats::{FederationStatsSnapshot, WireStatsSnapshot};

/// How the server-side auto-subscription engine should treat one user,
/// sent with [`Request::AutoSubscribe`].
///
/// `None` in the request means "use the daemon's defaults" (the
/// `reefd --autosub-*` flags); an explicit policy overrides them per
/// enrollment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoSubPolicy {
    /// Recommender deriving the filters.
    pub recommender: AutoSubMode,
    /// At most this many derived filters at once.
    pub max_filters: u32,
    /// Interest half-life in seconds (non-positive disables decay).
    pub half_life_secs: f64,
    /// Install/retire score threshold.
    pub min_score: f64,
}

impl Default for AutoSubPolicy {
    fn default() -> Self {
        let c = reef_core::AutoSubConfig::default();
        AutoSubPolicy {
            recommender: c.mode,
            max_filters: c.max_filters as u32,
            half_life_secs: c.half_life_secs,
            min_score: c.min_score,
        }
    }
}

/// One filter the engine currently derives for a user, with the reason
/// shown in receipts and [`FeedChange`] notices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoSubEntry {
    /// The derived filter.
    pub filter: Filter,
    /// Human-readable derivation reason.
    pub reason: String,
    /// Interest score at derivation time.
    pub score: f64,
}

/// Answer payload for [`Request::AutoSubscribe`] /
/// [`Request::AutoUnsubscribe`]: the filters currently derived for the
/// user (after enrollment: what is installed; after unenrollment: what
/// was just retired).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoSubReceipt {
    /// The enrolled user.
    pub user: UserId,
    /// Derived filters with reasons, strongest first.
    pub entries: Vec<AutoSubEntry>,
}

/// Unsolicited notice pushed when the engine installs or retires derived
/// filters for a user enrolled on this connection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedChange {
    /// The user whose derived feed set changed.
    pub user: UserId,
    /// Filters the engine just installed.
    pub installed: Vec<AutoSubEntry>,
    /// Filters the engine just retired.
    pub retired: Vec<AutoSubEntry>,
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// First message on every connection: announce the client's protocol
    /// version and a display name for diagnostics.
    Hello {
        /// Protocol version the client speaks.
        version: u8,
        /// Free-form client name (shows up in server-side diagnostics).
        client: String,
    },
    /// Place a subscription owned by this connection.
    Subscribe {
        /// The subscription's filter.
        filter: Filter,
    },
    /// Remove a subscription owned by this connection.
    Unsubscribe {
        /// Id returned by a previous `Subscribed` response.
        subscription: SubscriptionId,
    },
    /// Publish an event into the broker.
    Publish {
        /// The event payload.
        event: Event,
    },
    /// Upload a batch of attention data (the §3.1 extension → server path).
    UploadClicks {
        /// The batch to ingest.
        batch: ClickBatch,
    },
    /// Enroll a user in server-side automatic subscriptions: the engine
    /// derives filters from the user's uploaded clicks and installs them
    /// as subscriptions owned by this connection.
    AutoSubscribe {
        /// The user whose clicks drive the derivation.
        user: UserId,
        /// Per-enrollment policy; `None` uses the daemon's defaults.
        policy: Option<AutoSubPolicy>,
    },
    /// Unenroll a user: every derived filter is retired from the broker.
    AutoUnsubscribe {
        /// The user to unenroll.
        user: UserId,
    },
    /// Ask for broker + wire statistics.
    Stats,
    /// Liveness probe.
    Ping,
    /// Orderly goodbye; the server replies `Bye` and closes.
    Bye,
    /// First frame of a broker-to-broker connection: the dialing broker
    /// announces itself and asks to upgrade the connection to a peer
    /// link carrying [`reef_pubsub::PeerMsg`] frames.
    PeerHello {
        /// Protocol version the dialing broker speaks.
        version: u8,
        /// The dialing broker's name.
        broker: String,
        /// The dialing broker's federation-wide id (namespaces its
        /// subscription ids).
        broker_id: u32,
    },
}

/// Server → client replies, one per [`Request`].
// The `Stats` variant dwarfs the others (three full counter snapshots),
// but responses are transient stack values encoded straight onto the
// wire — boxing would only add an allocation per reply.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to `Hello`.
    Hello {
        /// Protocol version the server speaks.
        version: u8,
        /// Server build name.
        server: String,
        /// Subscriber id assigned to this connection.
        subscriber: u64,
    },
    /// Answer to `Subscribe`.
    Subscribed {
        /// Id of the new subscription.
        subscription: SubscriptionId,
    },
    /// Answer to `Unsubscribe`.
    Unsubscribed {
        /// The removed subscription's filter.
        filter: Filter,
    },
    /// Answer to `Publish`.
    Published {
        /// Id the broker assigned to the event.
        id: EventId,
        /// Copies placed on subscriber queues.
        delivered: u64,
        /// Copies dropped to queue overflow.
        dropped: u64,
    },
    /// Answer to `UploadClicks`.
    ClicksAccepted {
        /// Ingestion receipt from the server's click store.
        receipt: UploadReceipt,
    },
    /// Answer to `Stats`.
    Stats {
        /// Broker-side operation counters.
        broker: BrokerStatsSnapshot,
        /// Transport-side aggregate counters.
        wire: WireStatsSnapshot,
        /// Federation-side routing and peer-link counters.
        federation: FederationStatsSnapshot,
    },
    /// Answer to `AutoSubscribe`: what the engine currently derives.
    AutoSubscribed {
        /// Enrollment receipt listing the derived filters with reasons.
        receipt: AutoSubReceipt,
    },
    /// Answer to `AutoUnsubscribe`: what was just retired.
    AutoUnsubscribed {
        /// Unenrollment receipt listing the retired filters.
        receipt: AutoSubReceipt,
    },
    /// Answer to `Ping`.
    Pong,
    /// Answer to `Bye`; the server closes the connection after sending it.
    Bye,
    /// Answer to `PeerHello`: the connection is now a peer link. After
    /// this reply both directions carry [`reef_pubsub::PeerMsg`] frames.
    PeerWelcome {
        /// Protocol version the accepting broker speaks.
        version: u8,
        /// The accepting broker's name.
        broker: String,
        /// The accepting broker's federation-wide id.
        broker_id: u32,
    },
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

/// An asynchronous event delivery pushed by the server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deliver {
    /// The matched event, with broker id and timestamp.
    pub event: PublishedEvent,
}

/// Everything the server writes on a **v1 (JSON)** connection. Replies
/// carry no correlation id; they answer the connection's oldest
/// unanswered request.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerMessage {
    /// A reply to the connection's oldest unanswered request.
    Reply(Response),
    /// An asynchronous delivery.
    Deliver(Deliver),
    /// An asynchronous auto-subscription change notice. Only sent to
    /// connections that issued [`Request::AutoSubscribe`], so pre-autosub
    /// v1 clients never see the (new) variant.
    FeedChanged(FeedChange),
}

/// One client → server frame: a request plus the correlation id its
/// reply will echo.
///
/// The client assigns `corr` (any value; the stock [`crate::Client`]
/// uses a per-connection counter) and the server treats it as opaque.
/// The v1 JSON codec drops it on encode and synthesizes `0` on decode —
/// v1 pairing is by request order.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientFrame {
    /// Client-assigned correlation id, echoed by the reply.
    pub corr: u64,
    /// The request itself.
    pub request: Request,
}

/// One server → client frame: a correlated reply or an asynchronous
/// delivery.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum ServerFrame {
    /// A reply to the request that carried `corr`.
    Reply {
        /// Correlation id copied from the request's [`ClientFrame`].
        corr: u64,
        /// The response payload.
        response: Response,
    },
    /// An asynchronous delivery (never correlated).
    Deliver(Deliver),
    /// An asynchronous auto-subscription change notice (never
    /// correlated; only sent after an `AutoSubscribe` on the
    /// connection).
    FeedChanged(FeedChange),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use reef_pubsub::Op;

    fn round_trip_request(req: &Request) {
        let frame = Frame::encode(req).unwrap();
        let back: Request = frame.decode().unwrap();
        assert_eq!(&back, req);
    }

    fn round_trip_server(msg: &ServerMessage) {
        let frame = Frame::encode(msg).unwrap();
        let back: ServerMessage = frame.decode().unwrap();
        assert_eq!(&back, msg);
    }

    #[test]
    fn every_request_variant_round_trips() {
        round_trip_request(&Request::Hello {
            version: 1,
            client: "t".into(),
        });
        round_trip_request(&Request::Subscribe {
            filter: Filter::new().and("price", Op::Gt, 10.0),
        });
        round_trip_request(&Request::Unsubscribe {
            subscription: SubscriptionId(7),
        });
        round_trip_request(&Request::Publish {
            event: Event::builder()
                .attr("price", 12.5)
                .attr("sym", "ACME")
                .build(),
        });
        round_trip_request(&Request::UploadClicks {
            batch: ClickBatch {
                user: reef_simweb_user(3),
                clicks: vec![],
            },
        });
        round_trip_request(&Request::AutoSubscribe {
            user: reef_simweb_user(4),
            policy: None,
        });
        round_trip_request(&Request::AutoSubscribe {
            user: reef_simweb_user(4),
            policy: Some(AutoSubPolicy {
                recommender: AutoSubMode::Content,
                max_filters: 3,
                half_life_secs: 90.0,
                min_score: 1.5,
            }),
        });
        round_trip_request(&Request::AutoUnsubscribe {
            user: reef_simweb_user(4),
        });
        round_trip_request(&Request::Stats);
        round_trip_request(&Request::Ping);
        round_trip_request(&Request::Bye);
        round_trip_request(&Request::PeerHello {
            version: 1,
            broker: "reefd-b".into(),
            broker_id: 42,
        });
    }

    fn reef_simweb_user(id: u32) -> reef_simweb::UserId {
        reef_simweb::UserId(id)
    }

    #[test]
    fn every_response_variant_round_trips() {
        for response in [
            Response::Hello {
                version: 1,
                server: "reefd".into(),
                subscriber: 4,
            },
            Response::Subscribed {
                subscription: SubscriptionId(1),
            },
            Response::Unsubscribed {
                filter: Filter::new(),
            },
            Response::Published {
                id: EventId(9),
                delivered: 3,
                dropped: 1,
            },
            Response::ClicksAccepted {
                receipt: UploadReceipt {
                    user: reef_simweb_user(1),
                    accepted: 5,
                    rejected: 0,
                    wire_bytes: 120,
                    total_stored: 5,
                },
            },
            Response::Stats {
                broker: BrokerStatsSnapshot::default(),
                wire: WireStatsSnapshot::default(),
                federation: FederationStatsSnapshot::default(),
            },
            Response::AutoSubscribed {
                receipt: AutoSubReceipt {
                    user: reef_simweb_user(2),
                    entries: vec![AutoSubEntry {
                        filter: Filter::topic("http://news.example/feed.xml"),
                        reason: "topic: 5 clicks on news.example".into(),
                        score: 5.0,
                    }],
                },
            },
            Response::AutoUnsubscribed {
                receipt: AutoSubReceipt {
                    user: reef_simweb_user(2),
                    entries: vec![],
                },
            },
            Response::Pong,
            Response::Bye,
            Response::PeerWelcome {
                version: 1,
                broker: "reefd-a".into(),
                broker_id: 7,
            },
            Response::Error {
                message: "no".into(),
            },
        ] {
            round_trip_server(&ServerMessage::Reply(response));
        }
    }

    #[test]
    fn peer_msg_frames_round_trip() {
        use reef_pubsub::{GlobalSubId, PeerMsg};
        for msg in [
            PeerMsg::SubFwd {
                sub: GlobalSubId(3),
                filter: Filter::new().and("price", Op::Gt, 10.0),
            },
            PeerMsg::UnsubFwd {
                sub: GlobalSubId(3),
            },
            PeerMsg::EventFwd {
                event: PublishedEvent {
                    id: EventId(4),
                    published_at: 77,
                    event: Event::topical("news", "hello"),
                },
                hops: 2,
            },
        ] {
            let frame = Frame::encode(&msg).unwrap();
            let back: PeerMsg = frame.decode().unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn feed_change_notices_round_trip() {
        round_trip_server(&ServerMessage::FeedChanged(FeedChange {
            user: reef_simweb_user(9),
            installed: vec![AutoSubEntry {
                filter: Filter::keyword("body", "broker"),
                reason: "content: 3 clicks on broker".into(),
                score: 3.0,
            }],
            retired: vec![AutoSubEntry {
                filter: Filter::topic("http://old.example/feed.xml"),
                reason: "topic: 2 clicks on old.example".into(),
                score: 0.1,
            }],
        }));
    }

    #[test]
    fn deliveries_round_trip() {
        round_trip_server(&ServerMessage::Deliver(Deliver {
            event: PublishedEvent {
                id: EventId(4),
                published_at: 77,
                event: Event::topical("news", "hello"),
            },
        }));
    }
}
