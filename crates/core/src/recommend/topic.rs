//! Topic-based subscription recommendation (§3.2): Web feeds discovered in
//! the user's browsing history become zero-click subscriptions.

use crate::recommend::{RecAction, Recommendation};
use reef_pubsub::Filter;
use reef_simweb::UserId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Configuration of the topic recommender.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopicRecommenderConfig {
    /// Maximum new feed recommendations per user per day. The paper
    /// observes "enough feeds to overwhelm any user" without filtering and
    /// lands at ≈1 new recommendation/user/day with it (§6).
    pub max_per_user_per_day: usize,
    /// Events a subscription must deliver before it can be judged.
    pub min_feedback_events: u64,
    /// Click-through rate below which an unsubscribe is recommended.
    pub unsubscribe_ctr: f64,
}

impl Default for TopicRecommenderConfig {
    fn default() -> Self {
        TopicRecommenderConfig {
            max_per_user_per_day: 1,
            min_feedback_events: 8,
            unsubscribe_ctr: 0.12,
        }
    }
}

/// Per-subscription feedback totals reported by a frontend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SubscriptionFeedback {
    /// Events delivered and displayed.
    pub delivered: u64,
    /// Events the user clicked (positive).
    pub clicked: u64,
    /// Events the user deleted (negative).
    pub deleted: u64,
    /// Events that expired unread.
    pub expired: u64,
}

impl SubscriptionFeedback {
    /// Click-through rate (0 when nothing was delivered).
    pub fn ctr(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.clicked as f64 / self.delivered as f64
        }
    }
}

/// The topic-based recommender: deduplicating, rate-limited feed
/// recommendation plus feedback-driven unsubscription.
#[derive(Debug, Default)]
pub struct TopicRecommender {
    config: TopicRecommenderConfig,
    /// Feeds ever recommended to each user (never repeat).
    recommended: HashMap<UserId, HashSet<String>>,
    /// Feeds queued for each user, waiting for rate-limit headroom.
    queued: HashMap<UserId, Vec<String>>,
    /// Unsubscriptions already issued, never repeated.
    unsubscribed: HashMap<UserId, HashSet<String>>,
}

impl TopicRecommender {
    /// A recommender with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// A recommender with explicit settings.
    pub fn with_config(config: TopicRecommenderConfig) -> Self {
        TopicRecommender {
            config,
            ..TopicRecommender::default()
        }
    }

    /// Offer newly discovered feeds for a user. They enter the user's
    /// queue unless already recommended or queued.
    pub fn offer_feeds<I, S>(&mut self, user: UserId, feeds: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let seen = self.recommended.entry(user).or_default();
        let queue = self.queued.entry(user).or_default();
        for feed in feeds {
            let feed = feed.into();
            if !seen.contains(&feed) && !queue.contains(&feed) {
                queue.push(feed);
            }
        }
    }

    /// Number of feeds waiting in a user's queue.
    pub fn queued_count(&self, user: UserId) -> usize {
        self.queued.get(&user).map_or(0, Vec::len)
    }

    /// `true` when the feed was already recommended to the user.
    pub fn was_recommended(&self, user: UserId, feed: &str) -> bool {
        self.recommended
            .get(&user)
            .is_some_and(|s| s.contains(feed))
    }

    /// Drain up to the daily rate limit of queued feeds into subscribe
    /// recommendations.
    pub fn daily_recommendations(&mut self, user: UserId, day: u32) -> Vec<Recommendation> {
        let queue = self.queued.entry(user).or_default();
        let n = queue.len().min(self.config.max_per_user_per_day);
        let drained: Vec<String> = queue.drain(..n).collect();
        let seen = self.recommended.entry(user).or_default();
        drained
            .into_iter()
            .map(|feed| {
                seen.insert(feed.clone());
                Recommendation {
                    user,
                    action: RecAction::Subscribe(Filter::topic(&feed)),
                    reason: "feed discovered on a server you visit".to_owned(),
                    day,
                }
            })
            .collect()
    }

    /// Judge per-subscription feedback and recommend unsubscriptions for
    /// feeds the user demonstrably ignores.
    pub fn unsubscribe_recommendations(
        &mut self,
        user: UserId,
        feedback: &HashMap<String, SubscriptionFeedback>,
        day: u32,
    ) -> Vec<Recommendation> {
        let issued = self.unsubscribed.entry(user).or_default();
        let mut out = Vec::new();
        let mut feeds: Vec<&String> = feedback.keys().collect();
        feeds.sort_unstable();
        for feed in feeds {
            let fb = &feedback[feed];
            if fb.delivered < self.config.min_feedback_events {
                continue;
            }
            if fb.ctr() < self.config.unsubscribe_ctr && !issued.contains(feed) {
                issued.insert(feed.clone());
                out.push(Recommendation {
                    user,
                    action: RecAction::Unsubscribe(Filter::topic(feed)),
                    reason: format!(
                        "low attention: {} of {} events clicked",
                        fb.clicked, fb.delivered
                    ),
                    day,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feeds_are_recommended_once_at_rate_limit() {
        let mut rec = TopicRecommender::new();
        let user = UserId(0);
        rec.offer_feeds(user, ["f1", "f2", "f3"]);
        assert_eq!(rec.queued_count(user), 3);
        let day0 = rec.daily_recommendations(user, 0);
        assert_eq!(day0.len(), 1, "rate limit of 1/day");
        // Re-offering known feeds does not requeue them.
        rec.offer_feeds(user, ["f1", "f2", "f3"]);
        assert_eq!(rec.queued_count(user), 2);
        let day1 = rec.daily_recommendations(user, 1);
        assert_eq!(day1.len(), 1);
        assert_ne!(day0[0].action, day1[0].action);
        assert!(rec.was_recommended(user, "f1"));
    }

    #[test]
    fn rate_limit_is_configurable() {
        let mut rec = TopicRecommender::with_config(TopicRecommenderConfig {
            max_per_user_per_day: 5,
            ..TopicRecommenderConfig::default()
        });
        rec.offer_feeds(UserId(0), ["a", "b", "c"]);
        assert_eq!(rec.daily_recommendations(UserId(0), 0).len(), 3);
    }

    #[test]
    fn users_have_independent_queues() {
        let mut rec = TopicRecommender::new();
        rec.offer_feeds(UserId(0), ["f"]);
        rec.offer_feeds(UserId(1), ["f"]);
        assert_eq!(rec.daily_recommendations(UserId(0), 0).len(), 1);
        assert_eq!(rec.daily_recommendations(UserId(1), 0).len(), 1);
    }

    #[test]
    fn ignored_subscriptions_get_unsubscribe_recommendations() {
        let mut rec = TopicRecommender::new();
        let user = UserId(0);
        let mut feedback = HashMap::new();
        feedback.insert(
            "boring".to_owned(),
            SubscriptionFeedback {
                delivered: 20,
                clicked: 0,
                deleted: 12,
                expired: 8,
            },
        );
        feedback.insert(
            "loved".to_owned(),
            SubscriptionFeedback {
                delivered: 20,
                clicked: 15,
                deleted: 0,
                expired: 5,
            },
        );
        feedback.insert(
            "young".to_owned(),
            SubscriptionFeedback {
                delivered: 2,
                clicked: 0,
                deleted: 2,
                expired: 0,
            },
        );
        let recs = rec.unsubscribe_recommendations(user, &feedback, 9);
        assert_eq!(recs.len(), 1);
        assert!(recs[0].reason.contains("low attention"));
        match &recs[0].action {
            RecAction::Unsubscribe(f) => assert!(f.to_string().contains("boring")),
            other => panic!("expected unsubscribe, got {other:?}"),
        }
        // Never repeated.
        assert!(rec
            .unsubscribe_recommendations(user, &feedback, 10)
            .is_empty());
    }

    #[test]
    fn ctr_handles_zero_delivery() {
        assert_eq!(SubscriptionFeedback::default().ctr(), 0.0);
    }
}
