//! Content-based subscription recommendation (§3.3): the most important
//! terms of a user's browsing history become keyword queries.

use reef_pubsub::Filter;
use reef_simweb::UserId;
use reef_textindex::{select_terms, Corpus, OfferWeightMode, SelectedTerm, Tokenizer};
use std::collections::HashMap;
use std::fmt;

/// Builds per-user interest profiles from crawled page text and selects
/// query terms with Robertson's Offer Weight.
///
/// In the centralized deployment every user's pages double as every other
/// user's background corpus, which is exactly the collaborative advantage
/// the paper attributes to the centralized design (§3). A distributed peer
/// supplies its own (public) background corpus instead.
pub struct ContentRecommender {
    tokenizer: Tokenizer,
    history: HashMap<UserId, Corpus>,
    background: Corpus,
    /// Cap on history documents per user, to bound memory.
    max_docs_per_user: usize,
    docs_per_user: HashMap<UserId, usize>,
}

impl fmt::Debug for ContentRecommender {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ContentRecommender")
            .field("users", &self.history.len())
            .field("background_docs", &self.background.doc_count())
            .finish()
    }
}

impl Default for ContentRecommender {
    fn default() -> Self {
        Self::new()
    }
}

impl ContentRecommender {
    /// A recommender with the standard tokenizer and a 20k-doc cap per
    /// user.
    pub fn new() -> Self {
        ContentRecommender {
            tokenizer: Tokenizer::new(),
            history: HashMap::new(),
            background: Corpus::new(),
            max_docs_per_user: 20_000,
            docs_per_user: HashMap::new(),
        }
    }

    /// The tokenizer in use.
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// Add one viewed/crawled document to a user's history profile.
    pub fn add_history_doc(&mut self, user: UserId, text: &str) {
        let count = self.docs_per_user.entry(user).or_insert(0);
        if *count >= self.max_docs_per_user {
            return;
        }
        *count += 1;
        self.history
            .entry(user)
            .or_default()
            .add_text(&self.tokenizer, text);
    }

    /// Add a document to the shared background corpus.
    pub fn add_background_doc(&mut self, text: &str) {
        self.background.add_text(&self.tokenizer, text);
    }

    /// History document count for a user.
    pub fn history_len(&self, user: UserId) -> usize {
        self.history.get(&user).map_or(0, Corpus::doc_count)
    }

    /// Background document count.
    pub fn background_len(&self) -> usize {
        self.background.doc_count()
    }

    /// Select the top `n` interest terms for a user.
    ///
    /// In addition to the explicit background corpus, every *other* user's
    /// history serves as background (the centralized server's collaborative
    /// advantage).
    pub fn interest_terms(
        &self,
        user: UserId,
        n: usize,
        mode: OfferWeightMode,
    ) -> Vec<SelectedTerm> {
        let Some(history) = self.history.get(&user) else {
            return Vec::new();
        };
        // Merge other users' histories with the shared background corpus.
        let mut combined = self.background.clone();
        for (other, corpus) in &self.history {
            if *other == user {
                continue;
            }
            for doc in 0..corpus.doc_count() {
                let tokens: Vec<&str> = corpus
                    .doc_terms(reef_textindex::DocId(doc as u32))
                    .flat_map(|(t, tf)| {
                        std::iter::repeat_n(corpus.term(t).unwrap_or_default(), tf as usize)
                    })
                    .collect();
                combined.add_tokens(tokens);
            }
        }
        select_terms(history, &combined, n, mode)
    }

    /// Interest terms against the explicit background only (what a
    /// distributed peer, which sees no other user's data, can do).
    pub fn interest_terms_local(
        &self,
        user: UserId,
        n: usize,
        mode: OfferWeightMode,
    ) -> Vec<SelectedTerm> {
        let Some(history) = self.history.get(&user) else {
            return Vec::new();
        };
        select_terms(history, &self.background, n, mode)
    }

    /// Turn the top `n` interest terms into keyword subscription filters
    /// over an event text attribute ("build simple queries out of them",
    /// §3.3).
    pub fn keyword_filters(
        &self,
        user: UserId,
        n: usize,
        attr: &str,
        mode: OfferWeightMode,
    ) -> Vec<Filter> {
        self.interest_terms_local(user, n, mode)
            .into_iter()
            .map(|t| Filter::keyword(attr, &t.term))
            .collect()
    }

    /// A user's term vector (term → weight) for similarity computations.
    pub fn term_vector(&self, user: UserId, n: usize) -> HashMap<String, f64> {
        self.interest_terms_local(user, n, OfferWeightMode::TfIntegrated)
            .into_iter()
            .map(|t| (t.term, t.weight))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recommender() -> ContentRecommender {
        let mut r = ContentRecommender::new();
        // User 0 reads about brokers; user 1 about cooking.
        for _ in 0..5 {
            r.add_history_doc(UserId(0), "publish subscribe broker routing filters events");
            r.add_history_doc(UserId(1), "cooking garlic pasta dinner recipes kitchen");
        }
        for _ in 0..10 {
            r.add_background_doc("weather traffic holidays generic background news");
        }
        r
    }

    #[test]
    fn interest_terms_are_user_specific() {
        let r = recommender();
        let t0 = r.interest_terms(UserId(0), 3, OfferWeightMode::TfIntegrated);
        let t1 = r.interest_terms(UserId(1), 3, OfferWeightMode::TfIntegrated);
        assert!(t0.iter().any(|t| t.term.starts_with("broker")), "{t0:?}");
        assert!(t1
            .iter()
            .any(|t| t.term.starts_with("cook") || t.term.starts_with("garlic")));
        let terms0: Vec<&str> = t0.iter().map(|t| t.term.as_str()).collect();
        let terms1: Vec<&str> = t1.iter().map(|t| t.term.as_str()).collect();
        assert!(terms0.iter().all(|t| !terms1.contains(t)));
    }

    #[test]
    fn collaborative_background_discounts_other_users_terms() {
        let mut r = recommender();
        // Both users also read shared celebrity news.
        for _ in 0..5 {
            r.add_history_doc(UserId(0), "celebrity gossip scandal");
            r.add_history_doc(UserId(1), "celebrity gossip scandal");
        }
        let collaborative = r.interest_terms(UserId(0), 10, OfferWeightMode::TfIntegrated);
        let local = r.interest_terms_local(UserId(0), 10, OfferWeightMode::TfIntegrated);
        let weight = |list: &[SelectedTerm], term: &str| {
            list.iter()
                .find(|t| t.term == term)
                .map_or(0.0, |t| t.weight)
        };
        // With other users as background, the shared term loses weight
        // relative to the user-specific one.
        let collab_ratio =
            weight(&collaborative, "celebr") / weight(&collaborative, "broker").max(1e-9);
        let local_ratio = weight(&local, "celebr") / weight(&local, "broker").max(1e-9);
        assert!(
            collab_ratio < local_ratio,
            "collab {collab_ratio} vs local {local_ratio}"
        );
    }

    #[test]
    fn keyword_filters_wrap_terms() {
        let r = recommender();
        let filters = r.keyword_filters(UserId(0), 2, "body", OfferWeightMode::TfIntegrated);
        assert_eq!(filters.len(), 2);
        for f in &filters {
            assert_eq!(f.len(), 1);
        }
    }

    #[test]
    fn unknown_user_yields_empty() {
        let r = recommender();
        assert!(r
            .interest_terms(UserId(9), 5, OfferWeightMode::Classic)
            .is_empty());
        assert!(r
            .keyword_filters(UserId(9), 5, "body", OfferWeightMode::Classic)
            .is_empty());
    }

    #[test]
    fn doc_cap_is_enforced() {
        let mut r = ContentRecommender::new();
        r.max_docs_per_user = 3;
        for _ in 0..10 {
            r.add_history_doc(UserId(0), "words words words");
        }
        assert_eq!(r.history_len(UserId(0)), 3);
    }

    #[test]
    fn term_vector_has_weights() {
        let r = recommender();
        let v = r.term_vector(UserId(0), 5);
        assert!(!v.is_empty());
        assert!(v.values().all(|w| *w > 0.0));
    }
}
