//! Recommendation services: from parsed attention to subscribe/unsubscribe
//! actions.
//!
//! "Using the tokens found by the parser, a recommendation service makes
//! recommendations on what subscriptions to place and which to remove."
//! (§2.2)

pub mod autosub;
pub mod collab;
pub mod content;
pub mod topic;

use reef_pubsub::Filter;
use reef_simweb::UserId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What the recommendation service wants the frontend to do.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RecAction {
    /// Place a subscription with this filter.
    Subscribe(Filter),
    /// Remove the subscription previously placed for this filter.
    Unsubscribe(Filter),
}

/// One recommendation, addressed to one user's frontend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// The target user.
    pub user: UserId,
    /// The action to take.
    pub action: RecAction,
    /// Why the recommendation was made (human-readable, for the sidebar's
    /// tooltip and for experiment logs).
    pub reason: String,
    /// Day the recommendation was issued.
    pub day: u32,
}

impl fmt::Display for Recommendation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.action {
            RecAction::Subscribe(filter) => {
                write!(
                    f,
                    "[{} d{}] subscribe {} — {}",
                    self.user, self.day, filter, self.reason
                )
            }
            RecAction::Unsubscribe(filter) => {
                write!(
                    f,
                    "[{} d{}] unsubscribe {} — {}",
                    self.user, self.day, filter, self.reason
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommendation_displays_action_and_reason() {
        let rec = Recommendation {
            user: UserId(1),
            action: RecAction::Subscribe(Filter::topic("http://f/feed.rss")),
            reason: "feed discovered on visited server".to_owned(),
            day: 3,
        };
        let text = rec.to_string();
        assert!(text.contains("subscribe"));
        assert!(text.contains("feed discovered"));
    }
}
