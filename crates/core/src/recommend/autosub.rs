//! The auto-subscription engine: decayed interest scores over a user's
//! click history, turned into filters a broker can install and retire.
//!
//! This is the server-side half of the paper's loop (§2.2): attention
//! data flows in as clicks, a recommender derives filters from it, and
//! the daemon places them as *real* subscriptions on the user's behalf.
//! The engine here is deliberately pure — it never touches a broker or
//! a clock. Callers feed it the user's full click history plus a
//! timestamp and get back a diff of filters to install and retire; the
//! wire layer (`reef-wire`'s `autosub` module) owns the actual broker
//! subscriptions and the refresh cadence.
//!
//! Interest decays exponentially: each key's score is halved every
//! `half_life_secs` since it was last reinforced, so a feed the user
//! stops clicking falls below `min_score` and its derived filter is
//! retired rather than accumulating forever.

use crate::recommend::content::ContentRecommender;
use reef_attention::{host_of, looks_like_feed_url, Click};
use reef_pubsub::Filter;
use reef_simweb::UserId;
use reef_textindex::OfferWeightMode;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// Which recommender derives filters from clicks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AutoSubMode {
    /// Per-host click counts become topic subscriptions to the host's
    /// feed (the §3.2 feed case study, minus the crawler).
    #[default]
    Topic,
    /// Offer-Weight term selection over clicked-URL text becomes keyword
    /// filters (§3.3), via [`ContentRecommender`].
    Content,
}

impl AutoSubMode {
    /// Parse a mode name as used by `reefd --autosub-recommender`.
    pub fn parse(name: &str) -> Option<AutoSubMode> {
        match name {
            "topic" => Some(AutoSubMode::Topic),
            "content" => Some(AutoSubMode::Content),
            _ => None,
        }
    }

    /// The flag-style name (`topic` / `content`).
    pub fn name(self) -> &'static str {
        match self {
            AutoSubMode::Topic => "topic",
            AutoSubMode::Content => "content",
        }
    }
}

impl fmt::Display for AutoSubMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Tuning for one user's [`AutoSubEngine`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoSubConfig {
    /// Recommender choice.
    pub mode: AutoSubMode,
    /// At most this many derived filters are installed at once.
    pub max_filters: usize,
    /// Interest half-life in seconds: a score halves after this long
    /// without reinforcement. Non-positive disables decay.
    pub half_life_secs: f64,
    /// Scores below this never install a filter; installed filters whose
    /// score decays below it are retired.
    pub min_score: f64,
    /// Event attribute keyword filters match against (content mode).
    pub content_attr: String,
}

impl Default for AutoSubConfig {
    fn default() -> Self {
        AutoSubConfig {
            mode: AutoSubMode::Topic,
            max_filters: 4,
            half_life_secs: 600.0,
            min_score: 2.0,
            content_attr: "body".to_owned(),
        }
    }
}

/// One filter the engine currently derives (or just installed/retired),
/// with the human-readable reason the receipt and `FeedChanged` notices
/// carry.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedFilter {
    /// The filter itself.
    pub filter: Filter,
    /// Why it was derived ("topic: 5 clicks on news.example").
    pub reason: String,
    /// The interest score at derivation time.
    pub score: f64,
}

/// What one [`AutoSubEngine::observe`] pass changed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AutoSubDiff {
    /// Filters newly crossing the install threshold.
    pub installed: Vec<DerivedFilter>,
    /// Previously installed filters whose interest decayed away (or was
    /// displaced by stronger ones).
    pub retired: Vec<DerivedFilter>,
}

impl AutoSubDiff {
    /// `true` when the pass changed nothing.
    pub fn is_empty(&self) -> bool {
        self.installed.is_empty() && self.retired.is_empty()
    }
}

/// One scored interest (a feed URL or a keyword term).
#[derive(Debug, Clone)]
struct Interest {
    filter: Filter,
    /// Short label for reasons: the clicked host (topic) or term (content).
    label: String,
    score: f64,
    /// Clicks that ever reinforced this interest.
    clicks: u64,
    /// Timestamp of the last decay/bump, in caller seconds.
    updated: f64,
}

/// Per-user auto-subscription state: consumes the user's click history
/// incrementally and maintains the set of derived filters.
pub struct AutoSubEngine {
    user: UserId,
    config: AutoSubConfig,
    /// Clicks of the user's history already consumed.
    seen: usize,
    interests: HashMap<String, Interest>,
    /// Keys currently published as installed filters.
    installed: BTreeSet<String>,
    /// Content-mode corpus; unused (and unallocated) in topic mode.
    content: Option<ContentRecommender>,
}

impl fmt::Debug for AutoSubEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AutoSubEngine")
            .field("user", &self.user)
            .field("mode", &self.config.mode)
            .field("seen", &self.seen)
            .field("interests", &self.interests.len())
            .field("installed", &self.installed.len())
            .finish()
    }
}

/// URL tokens that carry no interest signal (scheme, markup suffixes,
/// generic TLD-ish labels).
const URL_NOISE: [&str; 14] = [
    "http", "https", "www", "html", "htm", "php", "xml", "rss", "atom", "rdf", "feed", "index",
    "com", "example",
];

/// Clicked-URL text for the content recommender: the URL's alphanumeric
/// words minus scheme/markup noise.
fn url_text(url: &str) -> String {
    url.split(|c: char| !c.is_alphanumeric())
        .filter(|w| w.len() >= 3 && !URL_NOISE.contains(&w.to_lowercase().as_str()))
        .collect::<Vec<_>>()
        .join(" ")
}

/// The feed URL a plain page click on `host` votes for. Clicks that
/// already look like feed URLs vote for themselves instead.
fn feed_url_for(url: &str) -> String {
    if looks_like_feed_url(url) {
        url.to_owned()
    } else {
        format!("http://{}/feed.xml", host_of(url))
    }
}

impl AutoSubEngine {
    /// An engine for one user.
    pub fn new(user: UserId, config: AutoSubConfig) -> Self {
        let content = match config.mode {
            AutoSubMode::Topic => None,
            AutoSubMode::Content => Some(ContentRecommender::new()),
        };
        AutoSubEngine {
            user,
            config,
            seen: 0,
            interests: HashMap::new(),
            installed: BTreeSet::new(),
            content,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &AutoSubConfig {
        &self.config
    }

    /// The user this engine tracks.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// Clicks of the history already consumed by [`AutoSubEngine::observe`].
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Consume any new clicks in `clicks` (the user's full history, in
    /// insertion order), decay existing interests to `now` (seconds, any
    /// monotonic origin) and return the install/retire diff.
    pub fn observe(&mut self, clicks: &[Click], now: f64) -> AutoSubDiff {
        let new = &clicks[self.seen.min(clicks.len())..];
        self.seen = clicks.len();

        // Decay every known interest to `now`, then apply bumps.
        let half_life = self.config.half_life_secs;
        for interest in self.interests.values_mut() {
            let elapsed = now - interest.updated;
            if half_life > 0.0 && elapsed > 0.0 {
                interest.score *= 0.5f64.powf(elapsed / half_life);
            }
            interest.updated = now;
        }
        let bumps = match self.config.mode {
            AutoSubMode::Topic => self.topic_bumps(new),
            AutoSubMode::Content => self.content_bumps(new),
        };
        for (key, filter, label, bump, count) in bumps {
            let interest = self.interests.entry(key).or_insert(Interest {
                filter,
                label,
                score: 0.0,
                clicks: 0,
                updated: now,
            });
            interest.score += bump;
            interest.clicks += count;
        }

        // Rank what clears the threshold; the strongest `max_filters` win.
        let mut ranked: Vec<(&String, &Interest)> = self
            .interests
            .iter()
            .filter(|(_, i)| i.score >= self.config.min_score)
            .collect();
        ranked.sort_by(|a, b| {
            b.1.score
                .partial_cmp(&a.1.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(b.0))
        });
        ranked.truncate(self.config.max_filters);
        let current: BTreeSet<String> = ranked.iter().map(|(k, _)| (*k).clone()).collect();

        let mut diff = AutoSubDiff::default();
        for key in &current {
            if !self.installed.contains(key) {
                diff.installed.push(self.derived(key));
            }
        }
        for key in &self.installed {
            if !current.contains(key) {
                diff.retired.push(self.derived(key));
            }
        }
        self.installed = current;

        // Forget interests that decayed to noise and are not installed.
        let floor = self.config.min_score * 1e-3;
        let installed = &self.installed;
        self.interests
            .retain(|key, i| i.score >= floor || installed.contains(key));
        diff
    }

    /// Snapshot of the currently derived filters, strongest first.
    pub fn active(&self) -> Vec<DerivedFilter> {
        let mut out: Vec<DerivedFilter> = self.installed.iter().map(|k| self.derived(k)).collect();
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        out
    }

    /// Drop all state and report the filters that were installed, so the
    /// caller can withdraw them from the broker.
    pub fn retire_all(&mut self) -> Vec<DerivedFilter> {
        let active = self.active();
        self.interests.clear();
        self.installed.clear();
        active
    }

    fn derived(&self, key: &str) -> DerivedFilter {
        let interest = &self.interests[key];
        DerivedFilter {
            filter: interest.filter.clone(),
            reason: format!(
                "{}: {} clicks on {}",
                self.config.mode, interest.clicks, interest.label
            ),
            score: interest.score,
        }
    }

    /// Topic mode: every click votes 1.0 for its host's feed URL.
    fn topic_bumps(&self, new: &[Click]) -> Vec<(String, Filter, String, f64, u64)> {
        let mut by_feed: HashMap<String, (String, u64)> = HashMap::new();
        for click in new {
            let feed = feed_url_for(&click.url);
            let entry = by_feed
                .entry(feed)
                .or_insert_with(|| (click.host().to_owned(), 0));
            entry.1 += 1;
        }
        by_feed
            .into_iter()
            .map(|(feed, (host, n))| {
                let filter = Filter::topic(&feed);
                (feed, filter, host, n as f64, n)
            })
            .collect()
    }

    /// Content mode: clicked-URL words feed the content recommender; its
    /// selected terms are bumped by how many new clicks mention them.
    fn content_bumps(&mut self, new: &[Click]) -> Vec<(String, Filter, String, f64, u64)> {
        let content = self
            .content
            .as_mut()
            .expect("content recommender exists in content mode");
        let mut docs: Vec<HashSet<String>> = Vec::with_capacity(new.len());
        for click in new {
            let text = url_text(&click.url);
            docs.push(content.tokenizer().tokenize(&text).into_iter().collect());
            content.add_history_doc(self.user, &text);
        }
        let candidates = content.interest_terms_local(
            self.user,
            (self.config.max_filters * 2).max(8),
            OfferWeightMode::TfIntegrated,
        );
        candidates
            .into_iter()
            .filter_map(|t| {
                let n = docs.iter().filter(|d| d.contains(&t.term)).count() as u64;
                if n == 0 {
                    return None;
                }
                let filter = Filter::keyword(&self.config.content_attr, &t.term);
                Some((format!("kw:{}", t.term), filter, t.term, n as f64, n))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn click(user: u32, tick: u64, url: &str) -> Click {
        Click {
            user: UserId(user),
            day: 0,
            tick,
            url: url.to_owned(),
            referrer: None,
        }
    }

    fn topic_engine(min_score: f64, half_life: f64) -> AutoSubEngine {
        AutoSubEngine::new(
            UserId(7),
            AutoSubConfig {
                min_score,
                half_life_secs: half_life,
                ..AutoSubConfig::default()
            },
        )
    }

    #[test]
    fn empty_history_derives_nothing() {
        let mut engine = topic_engine(2.0, 600.0);
        let diff = engine.observe(&[], 0.0);
        assert!(diff.is_empty());
        assert!(engine.active().is_empty());
        assert_eq!(engine.seen(), 0);
    }

    #[test]
    fn single_interest_user_gets_exactly_that_feed() {
        let mut engine = topic_engine(2.0, 600.0);
        let clicks: Vec<Click> = (0..5)
            .map(|t| click(7, t, "http://news.example/story.html"))
            .collect();
        let diff = engine.observe(&clicks, 1.0);
        assert_eq!(diff.installed.len(), 1);
        assert!(diff.retired.is_empty());
        let derived = &diff.installed[0];
        assert_eq!(
            derived.filter,
            Filter::topic("http://news.example/feed.xml")
        );
        assert!(
            derived.reason.contains("news.example"),
            "{}",
            derived.reason
        );
        // A re-observe of the same history shortly after changes nothing.
        let again = engine.observe(&clicks, 2.0);
        assert!(again.is_empty(), "{again:?}");
        assert_eq!(engine.active().len(), 1);
    }

    #[test]
    fn feed_shaped_clicks_subscribe_to_the_feed_itself() {
        let mut engine = topic_engine(2.0, 600.0);
        let clicks: Vec<Click> = (0..3)
            .map(|t| click(7, t, "http://blog.example/posts.rss"))
            .collect();
        let diff = engine.observe(&clicks, 0.0);
        assert_eq!(diff.installed.len(), 1);
        assert_eq!(
            diff.installed[0].filter,
            Filter::topic("http://blog.example/posts.rss")
        );
    }

    #[test]
    fn decay_to_zero_retires_the_filter() {
        let mut engine = topic_engine(2.0, 1.0);
        let clicks: Vec<Click> = (0..4)
            .map(|t| click(7, t, "http://news.example/a.html"))
            .collect();
        let diff = engine.observe(&clicks, 0.0);
        assert_eq!(diff.installed.len(), 1);
        let filter = diff.installed[0].filter.clone();
        // 20 half-lives later the score is ~4 × 2⁻²⁰ — far below
        // min_score, so the filter must be retired, not left dangling.
        let later = engine.observe(&clicks, 20.0);
        assert_eq!(later.installed.len(), 0);
        assert_eq!(later.retired.len(), 1);
        assert_eq!(later.retired[0].filter, filter);
        assert!(engine.active().is_empty());
    }

    #[test]
    fn reinforced_interest_survives_what_idle_interest_does_not() {
        let mut engine = topic_engine(2.0, 10.0);
        let mut clicks: Vec<Click> = (0..4)
            .map(|t| click(7, t, "http://stale.example/x.html"))
            .chain((4..8).map(|t| click(7, t, "http://live.example/y.html")))
            .collect();
        let diff = engine.observe(&clicks, 0.0);
        assert_eq!(diff.installed.len(), 2);
        // Only live.example keeps getting clicks.
        for t in 8..12 {
            clicks.push(click(7, t, "http://live.example/y.html"));
        }
        let later = engine.observe(&clicks, 40.0);
        assert_eq!(later.retired.len(), 1);
        assert!(later.retired[0].reason.contains("stale.example"));
        let active = engine.active();
        assert_eq!(active.len(), 1);
        assert!(active[0].reason.contains("live.example"));
    }

    #[test]
    fn max_filters_caps_the_installed_set() {
        let mut engine = AutoSubEngine::new(
            UserId(7),
            AutoSubConfig {
                max_filters: 2,
                min_score: 1.0,
                ..AutoSubConfig::default()
            },
        );
        let mut clicks = Vec::new();
        let mut tick = 0;
        for (host, n) in [("a.example", 5), ("b.example", 4), ("c.example", 3)] {
            for _ in 0..n {
                clicks.push(click(7, tick, &format!("http://{host}/p.html")));
                tick += 1;
            }
        }
        let diff = engine.observe(&clicks, 0.0);
        assert_eq!(diff.installed.len(), 2);
        let reasons: Vec<&str> = diff.installed.iter().map(|d| d.reason.as_str()).collect();
        assert!(
            reasons.iter().any(|r| r.contains("a.example")),
            "{reasons:?}"
        );
        assert!(
            reasons.iter().any(|r| r.contains("b.example")),
            "{reasons:?}"
        );
    }

    #[test]
    fn content_mode_derives_keyword_filters_from_urls() {
        let mut engine = AutoSubEngine::new(
            UserId(7),
            AutoSubConfig {
                mode: AutoSubMode::Content,
                min_score: 2.0,
                ..AutoSubConfig::default()
            },
        );
        let clicks: Vec<Click> = (0..6)
            .map(|t| {
                click(
                    7,
                    t,
                    &format!("http://site{t}.example/brokers/story-{t}.html"),
                )
            })
            .collect();
        let diff = engine.observe(&clicks, 0.0);
        assert!(
            diff.installed
                .iter()
                .any(|d| d.reason.contains("broker") && d.filter.len() == 1),
            "{diff:?}"
        );
    }

    #[test]
    fn retire_all_reports_what_was_installed() {
        let mut engine = topic_engine(2.0, 600.0);
        let clicks: Vec<Click> = (0..3)
            .map(|t| click(7, t, "http://news.example/a.html"))
            .collect();
        engine.observe(&clicks, 0.0);
        let retired = engine.retire_all();
        assert_eq!(retired.len(), 1);
        assert!(engine.active().is_empty());
        assert!(engine.observe(&clicks, 1.0).is_empty());
    }
}
