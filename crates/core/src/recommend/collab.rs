//! Collaborative recommendation: grouping peers by interest similarity and
//! exchanging recommendations within groups.
//!
//! The distributed Reef (§4) cannot correlate all users' data centrally;
//! instead "peers can be grouped for the exchange of recommendations using
//! collaborative techniques" (§4, citing the I-SPY community model of
//! §5.2). This module implements that: interest profiles are term vectors,
//! similarity is cosine, groups form greedily above a similarity
//! threshold, and feeds that work for one member are suggested to the
//! rest.

use reef_simweb::UserId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// Cosine similarity of two sparse term vectors.
pub fn cosine_similarity(a: &HashMap<String, f64>, b: &HashMap<String, f64>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let dot: f64 = a
        .iter()
        .filter_map(|(term, wa)| b.get(term).map(|wb| wa * wb))
        .sum();
    let norm = |v: &HashMap<String, f64>| v.values().map(|w| w * w).sum::<f64>().sqrt();
    let denominator = norm(a) * norm(b);
    if denominator == 0.0 {
        0.0
    } else {
        dot / denominator
    }
}

/// A partition of users into interest communities.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PeerGroups {
    groups: Vec<Vec<UserId>>,
}

impl PeerGroups {
    /// The groups, each sorted by user id.
    pub fn groups(&self) -> &[Vec<UserId>] {
        &self.groups
    }

    /// The peers sharing a group with `user` (excluding the user).
    pub fn peers_of(&self, user: UserId) -> &[UserId] {
        for group in &self.groups {
            if let Some(pos) = group.iter().position(|u| *u == user) {
                // Return the whole group; caller filters self out. To keep
                // the API simple we return a slice and let callers skip.
                let _ = pos;
                return group;
            }
        }
        &[]
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// `true` when no groups exist.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

/// Greedily cluster users: each user joins the first existing group whose
/// *first member* (the group's seed) is at least `threshold`-similar;
/// otherwise the user seeds a new group. Deterministic in the order of
/// `profiles`.
pub fn group_peers(profiles: &[(UserId, HashMap<String, f64>)], threshold: f64) -> PeerGroups {
    let mut groups: Vec<(usize, Vec<UserId>)> = Vec::new();
    for (i, (user, vector)) in profiles.iter().enumerate() {
        let mut joined = false;
        for (seed_idx, members) in groups.iter_mut() {
            let seed_vector = &profiles[*seed_idx].1;
            if cosine_similarity(vector, seed_vector) >= threshold {
                members.push(*user);
                joined = true;
                break;
            }
        }
        if !joined {
            groups.push((i, vec![*user]));
        }
    }
    PeerGroups {
        groups: groups
            .into_iter()
            .map(|(_, mut members)| {
                members.sort_unstable();
                members
            })
            .collect(),
    }
}

/// Exchange feed subscriptions within groups: for each user, the feeds
/// that at least one group peer subscribes to (and clicks on), minus the
/// feeds the user already has. Returned suggestions are sorted for
/// determinism.
pub fn exchange_feeds(
    groups: &PeerGroups,
    subscriptions: &HashMap<UserId, BTreeSet<String>>,
) -> HashMap<UserId, Vec<String>> {
    let mut out: HashMap<UserId, Vec<String>> = HashMap::new();
    for group in groups.groups() {
        for user in group {
            let own: &BTreeSet<String> = match subscriptions.get(user) {
                Some(s) => s,
                None => &EMPTY,
            };
            let mut suggested: BTreeSet<String> = BTreeSet::new();
            for peer in group {
                if peer == user {
                    continue;
                }
                if let Some(theirs) = subscriptions.get(peer) {
                    for feed in theirs {
                        if !own.contains(feed) {
                            suggested.insert(feed.clone());
                        }
                    }
                }
            }
            out.insert(*user, suggested.into_iter().collect());
        }
    }
    out
}

static EMPTY: BTreeSet<String> = BTreeSet::new();

#[cfg(test)]
mod tests {
    use super::*;

    fn vector(pairs: &[(&str, f64)]) -> HashMap<String, f64> {
        pairs.iter().map(|(t, w)| ((*t).to_owned(), *w)).collect()
    }

    #[test]
    fn cosine_basics() {
        let a = vector(&[("x", 1.0), ("y", 1.0)]);
        let b = vector(&[("x", 1.0), ("y", 1.0)]);
        let c = vector(&[("z", 1.0)]);
        assert!((cosine_similarity(&a, &b) - 1.0).abs() < 1e-9);
        assert_eq!(cosine_similarity(&a, &c), 0.0);
        assert_eq!(cosine_similarity(&a, &HashMap::new()), 0.0);
    }

    #[test]
    fn similar_users_group_together() {
        let profiles = vec![
            (UserId(0), vector(&[("sport", 2.0), ("goal", 1.0)])),
            (UserId(1), vector(&[("sport", 1.5), ("goal", 2.0)])),
            (UserId(2), vector(&[("opera", 3.0)])),
        ];
        let groups = group_peers(&profiles, 0.5);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups.groups()[0], vec![UserId(0), UserId(1)]);
        assert_eq!(groups.groups()[1], vec![UserId(2)]);
        assert_eq!(groups.peers_of(UserId(1)), &[UserId(0), UserId(1)]);
        assert!(groups.peers_of(UserId(9)).is_empty());
    }

    #[test]
    fn threshold_one_separates_everyone_distinct() {
        let profiles = vec![
            (UserId(0), vector(&[("a", 1.0)])),
            (UserId(1), vector(&[("b", 1.0)])),
        ];
        assert_eq!(group_peers(&profiles, 0.99).len(), 2);
        // Zero threshold merges everyone.
        assert_eq!(group_peers(&profiles, 0.0).len(), 1);
    }

    #[test]
    fn feed_exchange_suggests_peer_feeds_only() {
        let profiles = vec![
            (UserId(0), vector(&[("sport", 1.0)])),
            (UserId(1), vector(&[("sport", 1.0)])),
            (UserId(2), vector(&[("opera", 1.0)])),
        ];
        let groups = group_peers(&profiles, 0.5);
        let mut subs: HashMap<UserId, BTreeSet<String>> = HashMap::new();
        subs.insert(
            UserId(0),
            ["f-a", "f-b"].iter().map(|s| (*s).to_owned()).collect(),
        );
        subs.insert(UserId(1), ["f-b"].iter().map(|s| (*s).to_owned()).collect());
        subs.insert(
            UserId(2),
            ["f-opera"].iter().map(|s| (*s).to_owned()).collect(),
        );
        let suggestions = exchange_feeds(&groups, &subs);
        assert_eq!(suggestions[&UserId(1)], vec!["f-a".to_owned()]);
        assert!(suggestions[&UserId(0)].is_empty());
        // The opera fan is alone: no cross-group leakage.
        assert!(suggestions[&UserId(2)].is_empty());
    }

    #[test]
    fn exchange_handles_users_without_subscriptions() {
        let profiles = vec![
            (UserId(0), vector(&[("x", 1.0)])),
            (UserId(1), vector(&[("x", 1.0)])),
        ];
        let groups = group_peers(&profiles, 0.5);
        let mut subs: HashMap<UserId, BTreeSet<String>> = HashMap::new();
        subs.insert(UserId(0), ["f"].iter().map(|s| (*s).to_owned()).collect());
        let suggestions = exchange_feeds(&groups, &subs);
        assert_eq!(suggestions[&UserId(1)], vec!["f".to_owned()]);
    }
}
