//! End-to-end Reef deployments: the closed loop of Figures 1 and 2.
//!
//! [`CentralizedReef`] wires browsing → recorder → batch upload → server
//! (crawl, recommend) → frontend (subscribe) → feed proxy → sidebar →
//! reactions → attention, exactly the step 1-4 cycle of Figure 1.
//! [`DistributedReef`] runs the same loop per host (Figure 2): attention
//! never leaves the user's machine, page analysis reads the browser
//! cache, and collaborative recommendations travel through periodic
//! peer-group exchanges instead of a central database.
//!
//! Both drivers advance in whole days and report per-day and cumulative
//! statistics; experiments **E3**, **E4** and **E6** are thin wrappers
//! around them.

use crate::central::{CentralReefServer, ServerConfig};
use crate::frontend::{FrontendConfig, SubscriptionFrontend};
use crate::peer::{PeerConfig, ReefPeer};
use crate::recommend::collab::{exchange_feeds, group_peers};
use crate::recommend::{RecAction, Recommendation};
use rand::rngs::StdRng;
use rand::SeedableRng;
use reef_attention::{AttentionRecorder, BrowserRecorder, Click, ReactionModel};
use reef_feeds::{
    write_feed, Feed, FeedEventsProxy, FeedFetcher, FeedFormat, FeedItem, PollReport,
};
use reef_pubsub::{Broker, Filter, Op, PublishedEvent, TOPIC_ATTR};
use reef_simweb::{BrowsingHistory, SimFeedFormat, TopicId, UserId, UserProfile, WebUniverse};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Serves current feed documents from the simulated Web, exercising the
/// full XML write→parse path on every poll.
#[derive(Debug, Clone, Copy)]
pub struct UniverseFeedFetcher<'a> {
    universe: &'a WebUniverse,
    /// How many trailing days of items a feed document exposes.
    window: u32,
}

impl<'a> UniverseFeedFetcher<'a> {
    /// A fetcher over `universe` with the given document window.
    pub fn new(universe: &'a WebUniverse, window: u32) -> Self {
        UniverseFeedFetcher { universe, window }
    }
}

impl FeedFetcher for UniverseFeedFetcher<'_> {
    fn fetch_feed(&self, url: &str, day: u32) -> Option<String> {
        let spec = self.universe.feed_by_url(url)?;
        let items = self.universe.feed_items_until(spec.id, day, self.window);
        let feed = Feed {
            title: spec.title.clone(),
            link: url.to_owned(),
            description: format!("simulated feed {}", spec.id),
            items: items
                .into_iter()
                .map(|i| FeedItem {
                    guid: i.guid,
                    title: i.title,
                    link: i.link,
                    description: i.body,
                    published_day: Some(i.published_day),
                })
                .collect(),
        };
        let format = match spec.format {
            SimFeedFormat::Rss2 => FeedFormat::Rss2,
            SimFeedFormat::Atom => FeedFormat::Atom,
            SimFeedFormat::Rdf => FeedFormat::Rdf,
        };
        Some(write_feed(&feed, format))
    }
}

/// The feed URL a pure topic filter subscribes to, if it is one.
pub fn topic_url_of(filter: &Filter) -> Option<&str> {
    let preds = filter.predicates();
    if preds.len() == 1 && preds[0].attr == TOPIC_ATTR && preds[0].op == Op::Eq {
        preds[0].operand.as_str()
    } else {
        None
    }
}

/// Shared deployment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReefConfig {
    /// Centralized-server settings.
    pub server: ServerConfig,
    /// Distributed-peer settings.
    pub peer: PeerConfig,
    /// Frontend/sidebar settings.
    pub frontend: FrontendConfig,
    /// Simulated user reaction policy.
    pub reaction: ReactionModel,
    /// Days of items a feed document exposes.
    pub feed_window_days: u32,
    /// Recorder upload batch size (clicks per upload).
    pub upload_batch_size: usize,
    /// Peer-group exchange period in days (distributed only).
    pub exchange_every_days: u32,
    /// Cosine similarity threshold for peer grouping.
    pub similarity_threshold: f64,
    /// Term-vector length used for grouping.
    pub profile_terms: usize,
}

impl Default for ReefConfig {
    fn default() -> Self {
        ReefConfig {
            server: ServerConfig::default(),
            peer: PeerConfig::default(),
            frontend: FrontendConfig::default(),
            reaction: ReactionModel::default(),
            feed_window_days: 14,
            upload_batch_size: 50,
            exchange_every_days: 7,
            similarity_threshold: 0.15,
            profile_terms: 20,
        }
    }
}

/// One day's outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DayReport {
    /// The day.
    pub day: u32,
    /// Browsing clicks routed into recorders/peers.
    pub clicks: u64,
    /// Subscribe recommendations issued.
    pub subscribe_recs: u64,
    /// Unsubscribe recommendations issued.
    pub unsubscribe_recs: u64,
    /// New feed items published by the proxy.
    pub feed_items: u64,
    /// Events pumped into sidebars.
    pub events_delivered: u64,
    /// Sidebar clicks (positive feedback).
    pub clicked: u64,
    /// Sidebar deletes (negative feedback).
    pub deleted: u64,
    /// Sidebar expiries.
    pub expired: u64,
}

impl DayReport {
    fn absorb_poll(&mut self, poll: PollReport) {
        self.feed_items += poll.new_items as u64;
    }
}

/// Bytes on the wire attributable to the subscription-automation machinery
/// (feed polling and event delivery are identical in both designs and are
/// excluded).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TrafficReport {
    /// Attention batches uploaded to a central server.
    pub attention_upload_bytes: u64,
    /// Server-side crawl fetches.
    pub crawl_bytes: u64,
    /// Recommendation messages pushed to frontends.
    pub recommendation_bytes: u64,
    /// Peer-group gossip (term vectors + suggestions).
    pub gossip_bytes: u64,
}

impl TrafficReport {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.attention_upload_bytes
            + self.crawl_bytes
            + self.recommendation_bytes
            + self.gossip_bytes
    }
}

impl fmt::Display for TrafficReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "attention={}B crawl={}B recs={}B gossip={}B total={}B",
            self.attention_upload_bytes,
            self.crawl_bytes,
            self.recommendation_bytes,
            self.gossip_bytes,
            self.total()
        )
    }
}

/// Per-user runtime state shared by both deployments.
struct UserAgent {
    profile: UserProfile,
    recorder: BrowserRecorder,
    frontend: SubscriptionFrontend,
    rng: StdRng,
}

/// `true` when the event's feed covers one of the user's interest topics.
fn event_relevant(
    universe: &WebUniverse,
    interests: &[(TopicId, f64)],
    event: &PublishedEvent,
) -> bool {
    let Some(topic_url) = event.event.topic() else {
        return false;
    };
    let Some(spec) = universe.feed_by_url(topic_url) else {
        return false;
    };
    spec.topics
        .iter()
        .any(|(t, _)| interests.iter().any(|(i, _)| i == t))
}

/// The centralized deployment (Figure 1).
pub struct CentralizedReef {
    config: ReefConfig,
    broker: Broker,
    proxy: FeedEventsProxy,
    server: CentralReefServer,
    agents: Vec<UserAgent>,
    feedback_tick: u64,
}

impl fmt::Debug for CentralizedReef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CentralizedReef")
            .field("users", &self.agents.len())
            .field("watched_feeds", &self.proxy.watched_count())
            .finish()
    }
}

impl CentralizedReef {
    /// Build the deployment for the given user profiles.
    pub fn new(profiles: &[UserProfile], config: ReefConfig, seed: u64) -> Self {
        let broker = Broker::new();
        let agents = profiles
            .iter()
            .enumerate()
            .map(|(i, profile)| UserAgent {
                recorder: BrowserRecorder::new(profile.user, config.upload_batch_size),
                frontend: SubscriptionFrontend::with_config(&broker, profile.user, config.frontend),
                rng: StdRng::seed_from_u64(seed ^ (0xA9E17 + i as u64)),
                profile: profile.clone(),
            })
            .collect();
        CentralizedReef {
            config,
            broker,
            proxy: FeedEventsProxy::new(),
            server: CentralReefServer::with_config(config.server),
            agents,
            feedback_tick: 1 << 40,
        }
    }

    fn agent_mut(&mut self, user: UserId) -> Option<&mut UserAgent> {
        self.agents.iter_mut().find(|a| a.profile.user == user)
    }

    fn apply_recommendations(&mut self, recs: &[Recommendation], report: &mut DayReport) {
        for rec in recs {
            // Split borrows: register/deregister on the proxy first.
            match &rec.action {
                RecAction::Subscribe(filter) => {
                    if let Some(url) = topic_url_of(filter) {
                        self.proxy.register(url);
                    }
                    report.subscribe_recs += 1;
                }
                RecAction::Unsubscribe(filter) => {
                    if let Some(url) = topic_url_of(filter) {
                        self.proxy.deregister(url);
                    }
                    report.unsubscribe_recs += 1;
                }
            }
            let broker = &self.broker;
            if let Some(agent) = self.agents.iter_mut().find(|a| a.profile.user == rec.user) {
                agent
                    .frontend
                    .apply(broker, rec)
                    .expect("recommendations are schema-valid");
            }
        }
    }

    /// Advance one day of the closed loop.
    pub fn run_day(
        &mut self,
        universe: &WebUniverse,
        history: &BrowsingHistory,
        day: u32,
    ) -> DayReport {
        let mut report = DayReport {
            day,
            ..DayReport::default()
        };

        // Step 1 (Fig. 1): browsing is recorded and uploaded in batches.
        for request in history.requests.iter().filter(|r| r.day == day) {
            report.clicks += 1;
            let click = Click::from_request(request);
            if let Some(agent) = self.agent_mut(request.user) {
                if let Some(batch) = agent.recorder.record_and_maybe_flush(click) {
                    self.server.ingest_batch(batch);
                }
            }
        }
        for agent in &mut self.agents {
            if let Some(batch) = agent.recorder.flush() {
                self.server.ingest_batch(batch);
            }
        }

        // Step 2: the server crawls and recommends.
        let recs = self.server.run_day(universe, day);
        self.apply_recommendations(&recs, &mut report);

        // Steps 3-4: the proxy polls feeds and the broker delivers events.
        let fetcher = UniverseFeedFetcher::new(universe, self.config.feed_window_days);
        report.absorb_poll(self.proxy.poll_due(&fetcher, &self.broker, day));

        // Sidebar: display, react (feeding clicks back into recorders),
        // expire.
        let reaction = self.config.reaction;
        for agent in &mut self.agents {
            report.events_delivered += agent.frontend.pump(day) as u64;
            let interests = agent.profile.interests.clone();
            let totals = agent.frontend.react_all(
                &mut agent.rng,
                &reaction,
                |ev| event_relevant(universe, &interests, ev),
                &mut agent.recorder,
                day,
                self.feedback_tick,
            );
            self.feedback_tick += totals.clicked + 1;
            report.clicked += totals.clicked;
            report.deleted += totals.deleted;
            report.expired += agent.frontend.expire(day) as u64;
        }

        // Closed loop: feedback clicks upload like any attention.
        for agent in &mut self.agents {
            if let Some(batch) = agent.recorder.flush() {
                self.server.ingest_batch(batch);
            }
        }

        // Unsubscribe pass from accumulated feedback.
        let mut unsub_recs = Vec::new();
        for agent in &self.agents {
            let user = agent.profile.user;
            let feedback = agent.frontend.feedback().clone();
            unsub_recs.extend(self.server.unsubscribe_pass(user, &feedback, day));
        }
        self.apply_recommendations(&unsub_recs, &mut report);

        report
    }

    /// Network traffic of the centralized machinery.
    pub fn traffic(&self) -> TrafficReport {
        let t = self.server.traffic();
        TrafficReport {
            attention_upload_bytes: t.attention_in_bytes,
            crawl_bytes: t.crawl_bytes,
            recommendation_bytes: t.recommendations_out_bytes,
            gossip_bytes: 0,
        }
    }

    /// The server (read access for experiment reporting).
    pub fn server(&self) -> &CentralReefServer {
        &self.server
    }

    /// The broker.
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    /// The feed proxy.
    pub fn proxy(&self) -> &FeedEventsProxy {
        &self.proxy
    }

    /// Active subscriptions per user, as `(user, count)`.
    pub fn subscription_counts(&self) -> Vec<(UserId, usize)> {
        self.agents
            .iter()
            .map(|a| (a.profile.user, a.frontend.active_count()))
            .collect()
    }

    /// Auto subscribe/unsubscribe totals per user.
    pub fn auto_counts(&self) -> Vec<(UserId, u64, u64)> {
        self.agents
            .iter()
            .map(|a| {
                let (s, u) = a.frontend.auto_counts();
                (a.profile.user, s, u)
            })
            .collect()
    }

    /// Attention data held server-side, in clicks (the privacy cost of the
    /// centralized design).
    pub fn server_resident_clicks(&self) -> u64 {
        self.server.store().len()
    }
}

/// One peer's runtime state in the distributed deployment.
struct PeerAgent {
    peer: ReefPeer,
    agent: UserAgent,
}

/// The distributed deployment (Figure 2).
pub struct DistributedReef {
    config: ReefConfig,
    broker: Broker,
    proxy: FeedEventsProxy,
    peers: Vec<PeerAgent>,
    feedback_tick: u64,
    gossip_bytes: u64,
}

impl fmt::Debug for DistributedReef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DistributedReef")
            .field("peers", &self.peers.len())
            .field("watched_feeds", &self.proxy.watched_count())
            .finish()
    }
}

impl DistributedReef {
    /// Build the deployment for the given user profiles.
    pub fn new(profiles: &[UserProfile], config: ReefConfig, seed: u64) -> Self {
        let broker = Broker::new();
        let peers = profiles
            .iter()
            .enumerate()
            .map(|(i, profile)| PeerAgent {
                peer: ReefPeer::with_config(profile.user, config.peer),
                agent: UserAgent {
                    // Only sidebar feedback flows through this recorder and
                    // it is drained every day; the batch size just needs to
                    // exceed a day's clicks.
                    recorder: BrowserRecorder::new(profile.user, 1 << 20),
                    frontend: SubscriptionFrontend::with_config(
                        &broker,
                        profile.user,
                        config.frontend,
                    ),
                    rng: StdRng::seed_from_u64(seed ^ (0xD15C0 + i as u64)),
                    profile: profile.clone(),
                },
            })
            .collect();
        DistributedReef {
            config,
            broker,
            proxy: FeedEventsProxy::new(),
            peers,
            feedback_tick: 1 << 40,
            gossip_bytes: 0,
        }
    }

    /// Seed every peer's background corpus with public reference documents
    /// (peers have no other users' data to weigh term selection against).
    pub fn seed_background<'a, I: IntoIterator<Item = &'a str>>(&mut self, docs: I) {
        for doc in docs {
            for pa in &mut self.peers {
                pa.peer.add_background_doc(doc);
            }
        }
    }

    fn apply_recommendations_for(
        broker: &Broker,
        proxy: &mut FeedEventsProxy,
        pa: &mut PeerAgent,
        recs: &[Recommendation],
        report: &mut DayReport,
    ) {
        for rec in recs {
            match &rec.action {
                RecAction::Subscribe(filter) => {
                    if let Some(url) = topic_url_of(filter) {
                        proxy.register(url);
                    }
                    report.subscribe_recs += 1;
                }
                RecAction::Unsubscribe(filter) => {
                    if let Some(url) = topic_url_of(filter) {
                        proxy.deregister(url);
                    }
                    report.unsubscribe_recs += 1;
                }
            }
            pa.agent
                .frontend
                .apply(broker, rec)
                .expect("recommendations are schema-valid");
        }
    }

    /// Advance one day of the distributed loop.
    pub fn run_day(
        &mut self,
        universe: &WebUniverse,
        history: &BrowsingHistory,
        day: u32,
    ) -> DayReport {
        let mut report = DayReport {
            day,
            ..DayReport::default()
        };

        // Attention stays on the host.
        for request in history.requests.iter().filter(|r| r.day == day) {
            report.clicks += 1;
            let click = Click::from_request(request);
            if let Some(pa) = self
                .peers
                .iter_mut()
                .find(|p| p.agent.profile.user == request.user)
            {
                pa.peer.observe_click(click);
            }
        }

        // Local analysis and recommendations.
        for i in 0..self.peers.len() {
            let recs = {
                let pa = &mut self.peers[i];
                pa.peer.run_day(universe, day)
            };
            let broker = &self.broker;
            let proxy = &mut self.proxy;
            Self::apply_recommendations_for(broker, proxy, &mut self.peers[i], &recs, &mut report);
        }

        // Periodic peer-group exchange (§4: "peers can be grouped for the
        // exchange of recommendations").
        if self.config.exchange_every_days > 0
            && day > 0
            && day.is_multiple_of(self.config.exchange_every_days)
        {
            self.exchange(&mut report);
        }

        // Feed polling and delivery — identical substrate to centralized.
        let fetcher = UniverseFeedFetcher::new(universe, self.config.feed_window_days);
        report.absorb_poll(self.proxy.poll_due(&fetcher, &self.broker, day));

        // Sidebar loop; feedback clicks go back into the local peer.
        let reaction = self.config.reaction;
        for pa in &mut self.peers {
            report.events_delivered += pa.agent.frontend.pump(day) as u64;
            let interests = pa.agent.profile.interests.clone();
            let totals = pa.agent.frontend.react_all(
                &mut pa.agent.rng,
                &reaction,
                |ev| event_relevant(universe, &interests, ev),
                &mut pa.agent.recorder,
                day,
                self.feedback_tick,
            );
            self.feedback_tick += totals.clicked + 1;
            report.clicked += totals.clicked;
            report.deleted += totals.deleted;
            report.expired += pa.agent.frontend.expire(day) as u64;
            if let Some(batch) = pa.agent.recorder.flush() {
                for click in batch.clicks {
                    pa.peer.observe_click(click);
                }
            }
        }

        // Local unsubscribe pass.
        for i in 0..self.peers.len() {
            let recs = {
                let pa = &mut self.peers[i];
                let feedback = pa.agent.frontend.feedback().clone();
                pa.peer.unsubscribe_pass(&feedback, day)
            };
            let broker = &self.broker;
            let proxy = &mut self.proxy;
            Self::apply_recommendations_for(broker, proxy, &mut self.peers[i], &recs, &mut report);
        }

        report
    }

    /// Run one peer-group exchange round, accounting gossip traffic.
    fn exchange(&mut self, _report: &mut DayReport) {
        let n_terms = self.config.profile_terms;
        let profiles: Vec<(UserId, HashMap<String, f64>)> = self
            .peers
            .iter()
            .map(|pa| (pa.agent.profile.user, pa.peer.term_vector(n_terms)))
            .collect();
        // Gossip cost: each peer shares its term vector with the group.
        for (_, vector) in &profiles {
            self.gossip_bytes += vector.keys().map(|t| t.len() + 8).sum::<usize>() as u64;
        }
        let groups = group_peers(&profiles, self.config.similarity_threshold);
        let subscriptions: HashMap<UserId, BTreeSet<String>> = self
            .peers
            .iter()
            .map(|pa| {
                let feeds: BTreeSet<String> = pa
                    .agent
                    .frontend
                    .active_filters()
                    .filter_map(|f| topic_url_of(f).map(str::to_owned))
                    .collect();
                (pa.agent.profile.user, feeds)
            })
            .collect();
        let suggestions = exchange_feeds(&groups, &subscriptions);
        for pa in &mut self.peers {
            if let Some(feeds) = suggestions.get(&pa.agent.profile.user) {
                self.gossip_bytes += feeds.iter().map(|f| f.len() + 8).sum::<usize>() as u64;
                pa.peer.accept_suggestions(feeds.iter().cloned());
            }
        }
    }

    /// Network traffic of the distributed machinery: only gossip — no
    /// attention upload, no server crawl.
    pub fn traffic(&self) -> TrafficReport {
        TrafficReport {
            attention_upload_bytes: 0,
            crawl_bytes: 0,
            recommendation_bytes: 0,
            gossip_bytes: self.gossip_bytes,
        }
    }

    /// The broker.
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    /// The feed proxy.
    pub fn proxy(&self) -> &FeedEventsProxy {
        &self.proxy
    }

    /// Active subscriptions per user.
    pub fn subscription_counts(&self) -> Vec<(UserId, usize)> {
        self.peers
            .iter()
            .map(|pa| (pa.agent.profile.user, pa.agent.frontend.active_count()))
            .collect()
    }

    /// Auto subscribe/unsubscribe totals per user.
    pub fn auto_counts(&self) -> Vec<(UserId, u64, u64)> {
        self.peers
            .iter()
            .map(|pa| {
                let (s, u) = pa.agent.frontend.auto_counts();
                (pa.agent.profile.user, s, u)
            })
            .collect()
    }

    /// Attention data resident anywhere other than the user's host: none,
    /// by construction.
    pub fn server_resident_clicks(&self) -> u64 {
        0
    }

    /// Total clicks held locally across peers (for parity checks).
    pub fn local_clicks(&self) -> u64 {
        self.peers.iter().map(|pa| pa.peer.store().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reef_simweb::browse::generate_history;
    use reef_simweb::{BrowseConfig, WebConfig};

    fn setup() -> (WebUniverse, BrowsingHistory) {
        let universe = WebUniverse::generate(WebConfig::default(), 77);
        let config = BrowseConfig {
            users: 3,
            days: 6,
            mean_page_views_per_day: 40.0,
            favourites_per_user: 40,
            ..BrowseConfig::default()
        };
        let history = generate_history(&universe, &config, 77);
        (universe, history)
    }

    #[test]
    fn centralized_loop_produces_subscriptions_and_events() {
        let (universe, history) = setup();
        let mut reef = CentralizedReef::new(&history.profiles, ReefConfig::default(), 7);
        let mut total_subs = 0u64;
        let mut total_events = 0u64;
        for day in 0..history.days {
            let report = reef.run_day(&universe, &history, day);
            total_subs += report.subscribe_recs;
            total_events += report.events_delivered;
        }
        assert!(total_subs > 0, "some feeds must be recommended");
        assert!(total_events > 0, "subscribed feeds must deliver events");
        assert!(reef.server_resident_clicks() > 0);
        let traffic = reef.traffic();
        assert!(traffic.attention_upload_bytes > 0);
        assert!(traffic.crawl_bytes > 0);
    }

    #[test]
    fn distributed_loop_keeps_attention_local() {
        let (universe, history) = setup();
        let mut reef = DistributedReef::new(&history.profiles, ReefConfig::default(), 7);
        let mut total_subs = 0u64;
        for day in 0..history.days {
            let report = reef.run_day(&universe, &history, day);
            total_subs += report.subscribe_recs;
        }
        assert!(total_subs > 0);
        assert_eq!(reef.server_resident_clicks(), 0);
        assert!(reef.local_clicks() > 0);
        let traffic = reef.traffic();
        assert_eq!(traffic.attention_upload_bytes, 0);
        assert_eq!(traffic.crawl_bytes, 0);
    }

    #[test]
    fn both_designs_recommend_comparably() {
        let (universe, history) = setup();
        let mut central = CentralizedReef::new(&history.profiles, ReefConfig::default(), 7);
        let mut distributed = DistributedReef::new(&history.profiles, ReefConfig::default(), 7);
        let mut central_subs = 0u64;
        let mut dist_subs = 0u64;
        for day in 0..history.days {
            central_subs += central.run_day(&universe, &history, day).subscribe_recs;
            dist_subs += distributed.run_day(&universe, &history, day).subscribe_recs;
        }
        // Same discovery signal, same rate limit: within 2x of each other.
        assert!(central_subs > 0 && dist_subs > 0);
        let ratio = central_subs as f64 / dist_subs as f64;
        assert!((0.5..=2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn universe_fetcher_serves_parseable_documents() {
        let (universe, _) = setup();
        let fetcher = UniverseFeedFetcher::new(&universe, 14);
        let spec = &universe.feeds()[0];
        let doc = fetcher.fetch_feed(&spec.url, 10).expect("feed exists");
        let (_, parsed) = reef_feeds::parse_feed(&doc).expect("well-formed");
        assert_eq!(parsed.title, spec.title);
        assert!(fetcher
            .fetch_feed("http://nope.example/feed.rss", 0)
            .is_none());
    }

    #[test]
    fn topic_url_extraction() {
        assert_eq!(
            topic_url_of(&Filter::topic("http://f/x.rss")),
            Some("http://f/x.rss")
        );
        assert_eq!(topic_url_of(&Filter::new()), None);
        assert_eq!(
            topic_url_of(&Filter::new().and("body", Op::Contains, "x")),
            None
        );
    }
}
