//! # reef-core — automatic subscriptions in publish-subscribe systems
//!
//! The primary contribution of Brenna et al. (ICDCSW'06): the **Reef**
//! architecture, which turns passively collected *user attention* into
//! automatically managed *subscriptions* in a publish-subscribe system.
//! "By delegating to a recommendation service the task of creating,
//! refining, and removing subscriptions …, the user can receive relevant
//! information without any additional effort." (§1)
//!
//! The four components of §2.2, and where they live:
//!
//! | Paper component | Here |
//! |---|---|
//! | Attention recorder | `reef-attention` ([`reef_attention::BrowserRecorder`]) |
//! | Attention parser | `reef-attention` ([`reef_attention::AttentionParser`]) + [`crawler`] |
//! | Recommendation service | [`recommend`] (topic, content, collaborative) |
//! | Subscription frontend | [`frontend`] (with the sidebar of §3.1) |
//!
//! Both deployments of the paper are provided as runnable closed loops:
//! [`CentralizedReef`] (Figure 1: upload → server crawl → recommend) and
//! [`DistributedReef`] (Figure 2: on-host analysis, peer-group exchange,
//! attention never leaves the machine).
//!
//! ```
//! use reef_core::{CentralizedReef, ReefConfig};
//! use reef_simweb::browse::generate_history;
//! use reef_simweb::{BrowseConfig, WebConfig, WebUniverse};
//!
//! let universe = WebUniverse::generate(WebConfig::default(), 1);
//! let mut browse = BrowseConfig::default();
//! browse.users = 2;
//! browse.days = 2;
//! browse.mean_page_views_per_day = 20.0;
//! let history = generate_history(&universe, &browse, 1);
//! let mut reef = CentralizedReef::new(&history.profiles, ReefConfig::default(), 1);
//! for day in 0..history.days {
//!     let report = reef.run_day(&universe, &history, day);
//!     assert_eq!(report.day, day);
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod central;
pub mod crawler;
pub mod frontend;
pub mod peer;
pub mod pipeline;
pub mod recommend;

pub use central::{CentralReefServer, ServerConfig, ServerTraffic};
pub use crawler::{ClassifierConfig, CrawlOutcome, CrawlStats, Crawler, PageClass};
pub use frontend::{
    EntryState, FrontendConfig, ReactionTotals, SidebarEntry, SubscriptionFrontend,
};
pub use peer::{PeerConfig, ReefPeer};
pub use pipeline::{
    topic_url_of, CentralizedReef, DayReport, DistributedReef, ReefConfig, TrafficReport,
    UniverseFeedFetcher,
};
pub use recommend::autosub::{
    AutoSubConfig, AutoSubDiff, AutoSubEngine, AutoSubMode, DerivedFilter,
};
pub use recommend::collab::{cosine_similarity, exchange_feeds, group_peers, PeerGroups};
pub use recommend::content::ContentRecommender;
pub use recommend::topic::{SubscriptionFeedback, TopicRecommender, TopicRecommenderConfig};
pub use recommend::{RecAction, Recommendation};
