//! The centralized Reef server (Figure 1).
//!
//! "A centralized server builds up a database of attention data
//! (transferred in step 1) for each user. The server analyzes the
//! attention data to recommend subscribe/unsubscribe actions to the
//! subscription frontend (2)." (§3)
//!
//! The server owns the click database, the crawler, and both
//! recommendation services; it accounts the bytes that cross the wire so
//! experiment **E4** can compare it against the distributed design.

use crate::crawler::{CrawlOutcome, CrawlStats, Crawler, PageClass};
use crate::recommend::content::ContentRecommender;
use crate::recommend::topic::{SubscriptionFeedback, TopicRecommender, TopicRecommenderConfig};
use crate::recommend::Recommendation;
use reef_attention::{host_of, ClickBatch, ClickStore};
use reef_simweb::{UserId, WebUniverse};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;

/// Server configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Pages crawled per day ("the URIs in them are batched for periodic
    /// crawling", §3.1).
    pub crawl_budget_per_day: usize,
    /// Topic-recommender settings.
    pub topic: TopicRecommenderConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            crawl_budget_per_day: 2000,
            topic: TopicRecommenderConfig::default(),
        }
    }
}

/// Bytes that crossed the network because of the centralized design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServerTraffic {
    /// Attention batches uploaded by users (step 1 of Figure 1).
    pub attention_in_bytes: u64,
    /// Crawl fetches issued by the server.
    pub crawl_bytes: u64,
    /// Recommendations pushed to frontends (step 2 of Figure 1).
    pub recommendations_out_bytes: u64,
}

impl ServerTraffic {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.attention_in_bytes + self.crawl_bytes + self.recommendations_out_bytes
    }
}

/// The centralized Reef server.
pub struct CentralReefServer {
    config: ServerConfig,
    store: ClickStore,
    crawler: Crawler,
    topic_rec: TopicRecommender,
    content_rec: ContentRecommender,
    crawl_queue: VecDeque<(UserId, String)>,
    queued_urls: HashSet<String>,
    feeds_discovered: BTreeSet<String>,
    traffic: ServerTraffic,
}

impl fmt::Debug for CentralReefServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CentralReefServer")
            .field("clicks", &self.store.len())
            .field("crawl_queue", &self.crawl_queue.len())
            .field("feeds_discovered", &self.feeds_discovered.len())
            .finish()
    }
}

impl Default for CentralReefServer {
    fn default() -> Self {
        Self::new()
    }
}

impl CentralReefServer {
    /// A server with default configuration.
    pub fn new() -> Self {
        Self::with_config(ServerConfig::default())
    }

    /// A server with explicit configuration.
    pub fn with_config(config: ServerConfig) -> Self {
        CentralReefServer {
            topic_rec: TopicRecommender::with_config(config.topic),
            config,
            store: ClickStore::new(),
            crawler: Crawler::new(),
            content_rec: ContentRecommender::new(),
            crawl_queue: VecDeque::new(),
            queued_urls: HashSet::new(),
            feeds_discovered: BTreeSet::new(),
            traffic: ServerTraffic::default(),
        }
    }

    /// Ingest an uploaded click batch (step 1 of Figure 1): store the
    /// clicks and queue unseen URLs for crawling.
    pub fn ingest_batch(&mut self, batch: ClickBatch) {
        self.traffic.attention_in_bytes += batch.wire_size() as u64;
        for click in &batch.clicks {
            if !self.crawler.has_crawled(&click.url)
                && self.crawler.host_flag(host_of(&click.url)).is_none()
                && self.queued_urls.insert(click.url.clone())
            {
                self.crawl_queue.push_back((click.user, click.url.clone()));
            }
        }
        self.store.insert_batch(batch);
    }

    /// Run the daily analysis: crawl queued pages (flagging ad/spam/
    /// multimedia hosts, discovering feeds, harvesting keywords) and emit
    /// subscription recommendations (step 2 of Figure 1).
    pub fn run_day(&mut self, universe: &WebUniverse, day: u32) -> Vec<Recommendation> {
        let budget = self.config.crawl_budget_per_day;
        for _ in 0..budget {
            let Some((user, url)) = self.crawl_queue.pop_front() else {
                break;
            };
            self.queued_urls.remove(&url);
            match self.crawler.crawl(universe, &url) {
                CrawlOutcome::Fetched {
                    class,
                    feeds,
                    text,
                    bytes,
                } => {
                    self.traffic.crawl_bytes += bytes as u64;
                    if class == PageClass::Content {
                        for feed in &feeds {
                            self.feeds_discovered.insert(feed.clone());
                        }
                        self.topic_rec.offer_feeds(user, feeds);
                        if let Some(text) = text {
                            self.content_rec.add_history_doc(user, &text);
                        }
                    }
                }
                CrawlOutcome::AlreadyCrawled
                | CrawlOutcome::HostFlagged(_)
                | CrawlOutcome::NotFound => {}
            }
        }
        let mut recommendations = Vec::new();
        let users: Vec<UserId> = self.store.users().collect();
        for user in users {
            recommendations.extend(self.topic_rec.daily_recommendations(user, day));
        }
        for rec in &recommendations {
            self.traffic.recommendations_out_bytes += recommendation_wire_size(rec) as u64;
        }
        recommendations
    }

    /// Judge frontend feedback and emit unsubscribe recommendations.
    pub fn unsubscribe_pass(
        &mut self,
        user: UserId,
        feedback: &HashMap<String, SubscriptionFeedback>,
        day: u32,
    ) -> Vec<Recommendation> {
        let recs = self
            .topic_rec
            .unsubscribe_recommendations(user, feedback, day);
        for rec in &recs {
            self.traffic.recommendations_out_bytes += recommendation_wire_size(rec) as u64;
        }
        recs
    }

    /// The click database.
    pub fn store(&self) -> &ClickStore {
        &self.store
    }

    /// Crawl counters.
    pub fn crawl_stats(&self) -> CrawlStats {
        self.crawler.stats()
    }

    /// The content recommender (shared access for term profiles).
    pub fn content(&self) -> &ContentRecommender {
        &self.content_rec
    }

    /// Mutable content recommender (to seed background corpora).
    pub fn content_mut(&mut self) -> &mut ContentRecommender {
        &mut self.content_rec
    }

    /// Distinct feeds discovered so far.
    pub fn feeds_discovered(&self) -> usize {
        self.feeds_discovered.len()
    }

    /// URLs waiting to be crawled.
    pub fn crawl_backlog(&self) -> usize {
        self.crawl_queue.len()
    }

    /// Network traffic attributable to the centralized design.
    pub fn traffic(&self) -> ServerTraffic {
        self.traffic
    }

    /// Hosts flagged by class, for experiment reporting.
    pub fn flagged_hosts(&self) -> usize {
        self.crawler.flagged_count()
    }
}

/// Approximate wire size of a recommendation message.
fn recommendation_wire_size(rec: &Recommendation) -> usize {
    let filter_size = match &rec.action {
        crate::recommend::RecAction::Subscribe(f) | crate::recommend::RecAction::Unsubscribe(f) => {
            f.wire_size()
        }
    };
    filter_size + rec.reason.len() + 24
}

#[cfg(test)]
mod tests {
    use super::*;
    use reef_attention::Click;
    use reef_simweb::{ServerKind, WebConfig};

    fn universe() -> WebUniverse {
        WebUniverse::generate(WebConfig::default(), 31)
    }

    fn batch_for(universe: &WebUniverse, user: u32, kind: ServerKind, n: usize) -> ClickBatch {
        let urls: Vec<String> = universe
            .servers()
            .iter()
            .filter(|s| s.kind == kind && !s.pages.is_empty())
            .take(n)
            .map(|s| universe.page(s.pages[0]).unwrap().url.clone())
            .collect();
        ClickBatch {
            user: UserId(user),
            clicks: urls
                .into_iter()
                .enumerate()
                .map(|(i, url)| Click {
                    user: UserId(user),
                    day: 0,
                    tick: i as u64,
                    url,
                    referrer: None,
                })
                .collect(),
        }
    }

    #[test]
    fn ingest_queues_unseen_urls_once() {
        let u = universe();
        let mut server = CentralReefServer::new();
        let batch = batch_for(&u, 0, ServerKind::Content, 5);
        server.ingest_batch(batch.clone());
        assert_eq!(server.crawl_backlog(), 5);
        // Same URLs again: nothing new queued.
        server.ingest_batch(batch);
        assert_eq!(server.crawl_backlog(), 5);
        assert!(server.traffic().attention_in_bytes > 0);
    }

    #[test]
    fn run_day_discovers_feeds_and_recommends() {
        let u = universe();
        let mut server = CentralReefServer::new();
        // Visit many content servers so some carry feeds.
        server.ingest_batch(batch_for(&u, 0, ServerKind::Content, 60));
        let recs = server.run_day(&u, 0);
        assert!(server.feeds_discovered() > 0, "feeds should be found");
        // Rate limit: at most 1 recommendation for the single user.
        assert!(recs.len() <= 1);
        assert!(server.traffic().crawl_bytes > 0);
        if !recs.is_empty() {
            assert!(server.traffic().recommendations_out_bytes > 0);
        }
    }

    #[test]
    fn ad_hosts_are_flagged_not_recommended() {
        let u = universe();
        let mut server = CentralReefServer::new();
        server.ingest_batch(batch_for(&u, 0, ServerKind::Ad, 20));
        let recs = server.run_day(&u, 0);
        assert!(recs.is_empty());
        assert!(server.flagged_hosts() >= 20);
        assert_eq!(server.feeds_discovered(), 0);
    }

    #[test]
    fn crawl_budget_limits_daily_work() {
        let u = universe();
        let mut server = CentralReefServer::with_config(ServerConfig {
            crawl_budget_per_day: 3,
            ..ServerConfig::default()
        });
        server.ingest_batch(batch_for(&u, 0, ServerKind::Content, 10));
        server.run_day(&u, 0);
        assert_eq!(server.crawl_backlog(), 7);
        assert_eq!(server.crawl_stats().fetched, 3);
    }

    #[test]
    fn unsubscribe_pass_flows_through() {
        let u = universe();
        let mut server = CentralReefServer::new();
        server.ingest_batch(batch_for(&u, 0, ServerKind::Content, 1));
        let mut feedback = HashMap::new();
        feedback.insert(
            "http://x/feed0.rss".to_owned(),
            SubscriptionFeedback {
                delivered: 30,
                clicked: 0,
                deleted: 25,
                expired: 5,
            },
        );
        let recs = server.unsubscribe_pass(UserId(0), &feedback, 5);
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn content_profiles_accumulate_from_crawl() {
        let u = universe();
        let mut server = CentralReefServer::new();
        server.ingest_batch(batch_for(&u, 0, ServerKind::Content, 30));
        server.run_day(&u, 0);
        assert!(server.content().history_len(UserId(0)) > 0);
    }
}
