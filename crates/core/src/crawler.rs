//! The Reef crawler.
//!
//! "The crawler retrieves the pages that the users visited and analyzes
//! them in several ways: It looks for ad servers and spam sites, as well
//! as multimedia, and flags them as such in the database, ensuring they
//! will not be crawled again. It scans the pages looking for sources of
//! Web feeds. It also parses the page to extract common keywords." (§3.1)
//!
//! Classification is content-based: the crawler sees only what a fetch
//! returns (content type, body text, embedded links) — never the
//! simulator's ground-truth server kind. Accuracy against ground truth is
//! measured in tests and in experiment **E1**.

use reef_attention::{host_of, looks_like_feed_url};
use reef_simweb::{WebUniverse, AD_MARKERS, SPAM_MARKERS};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// The crawler's verdict about a page/host, derived from content alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageClass {
    /// Ordinary content — crawl-worthy.
    Content,
    /// Advertisement / tracking endpoint.
    Ad,
    /// Spam site.
    Spam,
    /// Multimedia resource.
    Multimedia,
}

impl fmt::Display for PageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PageClass::Content => "content",
            PageClass::Ad => "ad",
            PageClass::Spam => "spam",
            PageClass::Multimedia => "multimedia",
        };
        f.write_str(s)
    }
}

/// What one crawl attempt produced.
#[derive(Debug, Clone, PartialEq)]
pub enum CrawlOutcome {
    /// The URL was fetched and analyzed.
    Fetched {
        /// Content-based classification.
        class: PageClass,
        /// Feed URLs discovered on the page (autodiscovery links plus
        /// feed-shaped anchors).
        feeds: Vec<String>,
        /// Page text, for keyword extraction (content pages only).
        text: Option<String>,
        /// Bytes fetched (network accounting).
        bytes: usize,
    },
    /// The URL was crawled before; skipped.
    AlreadyCrawled,
    /// The host was flagged (ad/spam/multimedia); skipped without fetching.
    HostFlagged(PageClass),
    /// The fetch failed (URL gone).
    NotFound,
}

/// Crawl counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CrawlStats {
    /// Successful fetches.
    pub fetched: u64,
    /// Skips due to the already-crawled set.
    pub skipped_crawled: u64,
    /// Skips due to host flags.
    pub skipped_flagged: u64,
    /// Fetch failures.
    pub not_found: u64,
    /// Total bytes fetched.
    pub bytes_fetched: u64,
    /// Hosts flagged as ad.
    pub hosts_flagged_ad: u64,
    /// Hosts flagged as spam.
    pub hosts_flagged_spam: u64,
    /// Hosts flagged as multimedia.
    pub hosts_flagged_multimedia: u64,
}

/// Marker-density thresholds for the content classifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassifierConfig {
    /// Fraction of tokens that must be ad markers to flag a page as ad.
    pub ad_density: f64,
    /// Fraction of tokens that must be spam markers to flag spam.
    pub spam_density: f64,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig {
            ad_density: 0.25,
            spam_density: 0.15,
        }
    }
}

/// The crawler: fetches pages from the (simulated) Web, classifies them,
/// discovers feeds, and remembers what it has seen.
#[derive(Debug, Default)]
pub struct Crawler {
    config: ClassifierConfig,
    crawled: HashSet<String>,
    flagged_hosts: HashMap<String, PageClass>,
    stats: CrawlStats,
}

impl Crawler {
    /// A crawler with default classifier thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// A crawler with explicit thresholds.
    pub fn with_config(config: ClassifierConfig) -> Self {
        Crawler {
            config,
            ..Crawler::default()
        }
    }

    /// Classify a fetched document by its content type and marker density.
    pub fn classify(&self, content_type: &str, text: &str) -> PageClass {
        let tokens: Vec<&str> = text.split_whitespace().collect();
        let density = |markers: &[&str]| {
            if tokens.is_empty() {
                return 0.0;
            }
            tokens.iter().filter(|t| markers.contains(*t)).count() as f64 / tokens.len() as f64
        };
        if content_type.starts_with("image/") || content_type.starts_with("application/") {
            // Tracking pixels are images stuffed with ad markers; other
            // binary blobs count as multimedia.
            if density(&AD_MARKERS) > self.config.ad_density {
                return PageClass::Ad;
            }
            return PageClass::Multimedia;
        }
        if content_type.starts_with("video/") || content_type.starts_with("audio/") {
            return PageClass::Multimedia;
        }
        if density(&AD_MARKERS) > self.config.ad_density {
            return PageClass::Ad;
        }
        if density(&SPAM_MARKERS) > self.config.spam_density {
            return PageClass::Spam;
        }
        PageClass::Content
    }

    /// Crawl one URL against the simulated Web.
    pub fn crawl(&mut self, universe: &WebUniverse, url: &str) -> CrawlOutcome {
        if self.crawled.contains(url) {
            self.stats.skipped_crawled += 1;
            return CrawlOutcome::AlreadyCrawled;
        }
        let host = host_of(url).to_owned();
        if let Some(class) = self.flagged_hosts.get(&host) {
            self.stats.skipped_flagged += 1;
            return CrawlOutcome::HostFlagged(*class);
        }
        let Some(page) = universe.fetch(url) else {
            self.stats.not_found += 1;
            return CrawlOutcome::NotFound;
        };
        self.crawled.insert(url.to_owned());
        let bytes = page.text.len() + 256;
        self.stats.fetched += 1;
        self.stats.bytes_fetched += bytes as u64;
        let class = self.classify(page.content_type, &page.text);
        match class {
            PageClass::Content => {
                // Feed autodiscovery: explicit alternate links plus any
                // feed-shaped URLs mentioned by the page.
                let mut feeds: Vec<String> = page
                    .feed_links
                    .iter()
                    .filter(|u| looks_like_feed_url(u))
                    .cloned()
                    .collect();
                feeds.dedup();
                CrawlOutcome::Fetched {
                    class,
                    feeds,
                    text: Some(page.text.clone()),
                    bytes,
                }
            }
            other => {
                self.flag_host(&host, other);
                CrawlOutcome::Fetched {
                    class: other,
                    feeds: Vec::new(),
                    text: None,
                    bytes,
                }
            }
        }
    }

    /// Flag a host so it is never fetched again.
    pub fn flag_host(&mut self, host: &str, class: PageClass) {
        if self.flagged_hosts.insert(host.to_owned(), class).is_none() {
            match class {
                PageClass::Ad => self.stats.hosts_flagged_ad += 1,
                PageClass::Spam => self.stats.hosts_flagged_spam += 1,
                PageClass::Multimedia => self.stats.hosts_flagged_multimedia += 1,
                PageClass::Content => {}
            }
        }
    }

    /// The flag on a host, if any.
    pub fn host_flag(&self, host: &str) -> Option<PageClass> {
        self.flagged_hosts.get(host).copied()
    }

    /// `true` when the URL has been fetched.
    pub fn has_crawled(&self, url: &str) -> bool {
        self.crawled.contains(url)
    }

    /// Crawl counters.
    pub fn stats(&self) -> CrawlStats {
        self.stats
    }

    /// Number of flagged hosts.
    pub fn flagged_count(&self) -> usize {
        self.flagged_hosts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reef_simweb::{ServerKind, WebConfig};

    fn universe() -> WebUniverse {
        WebUniverse::generate(WebConfig::default(), 21)
    }

    fn first_page_url(u: &WebUniverse, kind: ServerKind) -> String {
        let server = u.servers().iter().find(|s| s.kind == kind).unwrap();
        u.page(server.pages[0]).unwrap().url.clone()
    }

    #[test]
    fn content_pages_yield_text_and_feeds() {
        let u = universe();
        let mut crawler = Crawler::new();
        let server = u
            .servers()
            .iter()
            .find(|s| s.kind == ServerKind::Content && !s.feeds.is_empty())
            .unwrap();
        let url = u.page(server.pages[0]).unwrap().url.clone();
        match crawler.crawl(&u, &url) {
            CrawlOutcome::Fetched {
                class,
                feeds,
                text,
                bytes,
            } => {
                assert_eq!(class, PageClass::Content);
                assert_eq!(feeds.len(), server.feeds.len());
                assert!(text.is_some());
                assert!(bytes > 0);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn ad_pixels_are_flagged_and_not_refetched() {
        let u = universe();
        let mut crawler = Crawler::new();
        let url = first_page_url(&u, ServerKind::Ad);
        match crawler.crawl(&u, &url) {
            CrawlOutcome::Fetched { class, .. } => assert_eq!(class, PageClass::Ad),
            other => panic!("unexpected {other:?}"),
        }
        // Second fetch of the same URL: already crawled.
        assert_eq!(crawler.crawl(&u, &url), CrawlOutcome::AlreadyCrawled);
        // Another URL on the same host: host flag blocks the fetch.
        let host = reef_attention::host_of(&url).to_owned();
        let other_url = format!("http://{host}/other.gif");
        assert_eq!(
            crawler.crawl(&u, &other_url),
            CrawlOutcome::HostFlagged(PageClass::Ad)
        );
        assert_eq!(crawler.stats().skipped_flagged, 1);
    }

    #[test]
    fn spam_and_multimedia_detection() {
        let u = universe();
        let mut crawler = Crawler::new();
        match crawler.crawl(&u, &first_page_url(&u, ServerKind::Spam)) {
            CrawlOutcome::Fetched { class, .. } => assert_eq!(class, PageClass::Spam),
            other => panic!("unexpected {other:?}"),
        }
        match crawler.crawl(&u, &first_page_url(&u, ServerKind::Multimedia)) {
            CrawlOutcome::Fetched { class, .. } => assert_eq!(class, PageClass::Multimedia),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn classifier_accuracy_over_whole_universe() {
        let u = universe();
        let crawler = Crawler::new();
        let mut correct = 0usize;
        let mut total = 0usize;
        for server in u.servers() {
            let page = u.page(server.pages[0]).unwrap();
            let predicted = crawler.classify(page.content_type, &page.text);
            let expected = match server.kind {
                ServerKind::Content => PageClass::Content,
                ServerKind::Ad => PageClass::Ad,
                ServerKind::Spam => PageClass::Spam,
                ServerKind::Multimedia => PageClass::Multimedia,
            };
            total += 1;
            if predicted == expected {
                correct += 1;
            }
        }
        let accuracy = correct as f64 / total as f64;
        assert!(accuracy > 0.98, "classifier accuracy {accuracy}");
    }

    #[test]
    fn missing_urls_are_counted() {
        let u = universe();
        let mut crawler = Crawler::new();
        assert_eq!(
            crawler.crawl(&u, "http://ghost.example/x"),
            CrawlOutcome::NotFound
        );
        assert_eq!(crawler.stats().not_found, 1);
    }

    #[test]
    fn content_pages_do_not_flag_their_host() {
        let u = universe();
        let mut crawler = Crawler::new();
        let url = first_page_url(&u, ServerKind::Content);
        crawler.crawl(&u, &url);
        assert_eq!(crawler.host_flag(reef_attention::host_of(&url)), None);
    }

    #[test]
    fn empty_text_is_content() {
        let crawler = Crawler::new();
        assert_eq!(crawler.classify("text/html", ""), PageClass::Content);
    }
}
