//! The subscription frontend and sidebar.
//!
//! "In response, a subscription frontend activates or deactivates
//! subscriptions, as well as receives and displays the events that
//! arrive." (§2.2) "The events from subscriptions are displayed in a
//! sidebar … The user may click on the event to view it … or click on a
//! button to delete it. If the user ignores the event for a certain period
//! of time, it expires and disappears from the list." (§3.1)
//!
//! Sidebar interactions feed the closed loop: clicks are recorded as
//! attention (positive), deletes count as negative feedback, expiries as
//! mild negative feedback. Per-topic totals are exported as
//! [`SubscriptionFeedback`] for the recommender's unsubscribe pass.

use crate::recommend::topic::SubscriptionFeedback;
use crate::recommend::{RecAction, Recommendation};
use rand::Rng;
use reef_attention::{BrowserRecorder, Click, Reaction, ReactionModel};
use reef_pubsub::{
    Broker, BrokerError, Filter, PublishedEvent, SubscriberHandle, SubscriberId, SubscriptionId,
};
use reef_simweb::UserId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Lifecycle state of a sidebar entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntryState {
    /// Displayed, not yet acted on.
    Fresh,
    /// Clicked through.
    Clicked,
    /// Deleted by the user.
    Deleted,
    /// Expired unread.
    Expired,
}

/// One displayed notification.
#[derive(Debug, Clone, PartialEq)]
pub struct SidebarEntry {
    /// The delivered event.
    pub event: PublishedEvent,
    /// Day it arrived.
    pub arrived_day: u32,
    /// Current state.
    pub state: EntryState,
}

/// Frontend configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontendConfig {
    /// Days a fresh entry stays displayed before expiring.
    pub sidebar_ttl_days: u32,
    /// Maximum retained entries (oldest resolved entries are evicted
    /// first).
    pub sidebar_capacity: usize,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            sidebar_ttl_days: 3,
            sidebar_capacity: 500,
        }
    }
}

/// Per-day reaction totals (returned by [`SubscriptionFrontend::react_all`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReactionTotals {
    /// Events clicked.
    pub clicked: u64,
    /// Events deleted.
    pub deleted: u64,
    /// Events left fresh (ignored for now).
    pub ignored: u64,
}

/// The per-user subscription frontend: holds the broker registration,
/// applies recommendations, and runs the sidebar.
pub struct SubscriptionFrontend {
    user: UserId,
    subscriber: SubscriberId,
    handle: SubscriberHandle,
    active: Vec<(SubscriptionId, Filter)>,
    sidebar: Vec<SidebarEntry>,
    feedback: HashMap<String, SubscriptionFeedback>,
    config: FrontendConfig,
    auto_subscribed: u64,
    auto_unsubscribed: u64,
}

impl fmt::Debug for SubscriptionFrontend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SubscriptionFrontend")
            .field("user", &self.user)
            .field("active", &self.active.len())
            .field("sidebar", &self.sidebar.len())
            .finish()
    }
}

impl SubscriptionFrontend {
    /// Register a frontend for `user` with `broker`.
    pub fn new(broker: &Broker, user: UserId) -> Self {
        Self::with_config(broker, user, FrontendConfig::default())
    }

    /// Register with explicit configuration.
    pub fn with_config(broker: &Broker, user: UserId, config: FrontendConfig) -> Self {
        let (subscriber, handle) = broker.register();
        SubscriptionFrontend {
            user,
            subscriber,
            handle,
            active: Vec::new(),
            sidebar: Vec::new(),
            feedback: HashMap::new(),
            config,
            auto_subscribed: 0,
            auto_unsubscribed: 0,
        }
    }

    /// The user this frontend belongs to.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// The broker-side subscriber id.
    pub fn subscriber(&self) -> SubscriberId {
        self.subscriber
    }

    /// Apply a recommendation: place or remove a subscription.
    ///
    /// "When the browser extension receives a server's recommendation, it
    /// automatically places that subscription." (§3.1)
    ///
    /// # Errors
    ///
    /// Propagates broker errors (unknown subscriber, schema violations).
    pub fn apply(&mut self, broker: &Broker, rec: &Recommendation) -> Result<(), BrokerError> {
        match &rec.action {
            RecAction::Subscribe(filter) => {
                self.subscribe(broker, filter.clone())?;
                self.auto_subscribed += 1;
                Ok(())
            }
            RecAction::Unsubscribe(filter) => {
                if self.unsubscribe_filter(broker, filter)? {
                    self.auto_unsubscribed += 1;
                }
                Ok(())
            }
        }
    }

    /// Place a subscription directly (manual or recommended).
    ///
    /// # Errors
    ///
    /// Propagates broker errors.
    pub fn subscribe(
        &mut self,
        broker: &Broker,
        filter: Filter,
    ) -> Result<SubscriptionId, BrokerError> {
        let id = broker.subscribe(self.subscriber, filter.clone())?;
        self.active.push((id, filter));
        Ok(id)
    }

    /// Remove the first active subscription with exactly this filter.
    /// Returns whether one was found.
    ///
    /// # Errors
    ///
    /// Propagates broker errors.
    pub fn unsubscribe_filter(
        &mut self,
        broker: &Broker,
        filter: &Filter,
    ) -> Result<bool, BrokerError> {
        if let Some(pos) = self.active.iter().position(|(_, f)| f == filter) {
            let (id, _) = self.active.remove(pos);
            broker.unsubscribe(id)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Active subscription count.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Active subscription filters.
    pub fn active_filters(&self) -> impl Iterator<Item = &Filter> {
        self.active.iter().map(|(_, f)| f)
    }

    /// `true` when an active subscription targets this topic.
    pub fn subscribed_to_topic(&self, topic: &str) -> bool {
        let probe = Filter::topic(topic);
        self.active.iter().any(|(_, f)| *f == probe)
    }

    /// Pull delivered events from the broker queue into the sidebar.
    /// Returns how many arrived.
    pub fn pump(&mut self, day: u32) -> usize {
        let mut n = 0;
        while let Some(event) = self.handle.try_recv() {
            // The sidebar keeps its own owned copy; with a single
            // recipient the unwrap is free (no other handle exists).
            let event =
                std::sync::Arc::try_unwrap(event).unwrap_or_else(|shared| (*shared).clone());
            let key = feedback_key(&event);
            self.feedback.entry(key).or_default().delivered += 1;
            self.sidebar.push(SidebarEntry {
                event,
                arrived_day: day,
                state: EntryState::Fresh,
            });
            n += 1;
        }
        self.enforce_capacity();
        n
    }

    /// Let the simulated user react to every fresh entry. Clicks are
    /// recorded into `recorder` — the closed loop: "clicking of a link
    /// contained in an event will be captured by the attention recorder"
    /// (§2.2).
    pub fn react_all<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        model: &ReactionModel,
        mut is_relevant: impl FnMut(&PublishedEvent) -> bool,
        recorder: &mut BrowserRecorder,
        day: u32,
        tick_base: u64,
    ) -> ReactionTotals {
        let mut totals = ReactionTotals::default();
        let mut tick = tick_base;
        for entry in &mut self.sidebar {
            if entry.state != EntryState::Fresh {
                continue;
            }
            let relevant = is_relevant(&entry.event);
            match model.decide(rng, relevant) {
                Reaction::Click => {
                    entry.state = EntryState::Clicked;
                    totals.clicked += 1;
                    let key = feedback_key(&entry.event);
                    self.feedback.entry(key).or_default().clicked += 1;
                    let link = entry
                        .event
                        .event
                        .get("link")
                        .and_then(|v| v.as_str())
                        .unwrap_or("reef://event-without-link")
                        .to_owned();
                    recorder.record_and_maybe_flush(Click {
                        user: self.user,
                        day,
                        tick,
                        url: link,
                        referrer: Some("reef://sidebar".to_owned()),
                    });
                    tick += 1;
                }
                Reaction::Delete => {
                    entry.state = EntryState::Deleted;
                    totals.deleted += 1;
                    let key = feedback_key(&entry.event);
                    self.feedback.entry(key).or_default().deleted += 1;
                }
                Reaction::Ignore => {
                    totals.ignored += 1;
                }
            }
        }
        totals
    }

    /// Expire fresh entries older than the TTL. Returns how many expired.
    pub fn expire(&mut self, day: u32) -> usize {
        let ttl = self.config.sidebar_ttl_days;
        let mut n = 0;
        for entry in &mut self.sidebar {
            if entry.state == EntryState::Fresh && day.saturating_sub(entry.arrived_day) >= ttl {
                entry.state = EntryState::Expired;
                let key = feedback_key(&entry.event);
                self.feedback.entry(key).or_default().expired += 1;
                n += 1;
            }
        }
        n
    }

    fn enforce_capacity(&mut self) {
        let over = self
            .sidebar
            .len()
            .saturating_sub(self.config.sidebar_capacity);
        if over == 0 {
            return;
        }
        // Evict resolved entries first, oldest first; keep fresh ones.
        let mut removed = 0;
        self.sidebar.retain(|e| {
            if removed < over && e.state != EntryState::Fresh {
                removed += 1;
                false
            } else {
                true
            }
        });
        // Still over capacity (all fresh): drop oldest fresh.
        let over = self
            .sidebar
            .len()
            .saturating_sub(self.config.sidebar_capacity);
        if over > 0 {
            self.sidebar.drain(..over);
        }
    }

    /// Current sidebar entries.
    pub fn sidebar(&self) -> &[SidebarEntry] {
        &self.sidebar
    }

    /// Per-topic feedback totals (for the unsubscribe pass).
    pub fn feedback(&self) -> &HashMap<String, SubscriptionFeedback> {
        &self.feedback
    }

    /// Automatic subscribe/unsubscribe counters.
    pub fn auto_counts(&self) -> (u64, u64) {
        (self.auto_subscribed, self.auto_unsubscribed)
    }
}

/// Feedback bucketing key of an event: its topic (feed URL) when topical,
/// otherwise a content-subscription bucket.
fn feedback_key(event: &PublishedEvent) -> String {
    event
        .event
        .topic()
        .map(str::to_owned)
        .unwrap_or_else(|| "content:*".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use reef_attention::AttentionRecorder as _;
    use reef_pubsub::Event;

    fn setup() -> (Broker, SubscriptionFrontend) {
        let broker = Broker::new();
        let frontend = SubscriptionFrontend::new(&broker, UserId(0));
        (broker, frontend)
    }

    fn feed_event(topic: &str, link: &str) -> Event {
        Event::builder()
            .attr("topic", topic)
            .attr("title", "t")
            .attr("link", link)
            .build()
    }

    #[test]
    fn apply_subscribe_then_events_flow() {
        let (broker, mut frontend) = setup();
        let rec = Recommendation {
            user: UserId(0),
            action: RecAction::Subscribe(Filter::topic("f1")),
            reason: "test".into(),
            day: 0,
        };
        frontend.apply(&broker, &rec).unwrap();
        assert_eq!(frontend.active_count(), 1);
        assert!(frontend.subscribed_to_topic("f1"));
        broker.publish(feed_event("f1", "http://x/1")).unwrap();
        assert_eq!(frontend.pump(0), 1);
        assert_eq!(frontend.sidebar().len(), 1);
        assert_eq!(frontend.feedback()["f1"].delivered, 1);
    }

    #[test]
    fn apply_unsubscribe_stops_flow() {
        let (broker, mut frontend) = setup();
        frontend.subscribe(&broker, Filter::topic("f1")).unwrap();
        let rec = Recommendation {
            user: UserId(0),
            action: RecAction::Unsubscribe(Filter::topic("f1")),
            reason: "ignored".into(),
            day: 1,
        };
        frontend.apply(&broker, &rec).unwrap();
        assert_eq!(frontend.active_count(), 0);
        broker.publish(feed_event("f1", "http://x/1")).unwrap();
        assert_eq!(frontend.pump(1), 0);
        assert_eq!(frontend.auto_counts(), (0, 1));
    }

    #[test]
    fn unsubscribe_unknown_filter_is_noop() {
        let (broker, mut frontend) = setup();
        assert!(!frontend
            .unsubscribe_filter(&broker, &Filter::topic("nope"))
            .unwrap());
    }

    #[test]
    fn reactions_feed_the_closed_loop() {
        let (broker, mut frontend) = setup();
        frontend.subscribe(&broker, Filter::topic("fr")).unwrap();
        frontend.subscribe(&broker, Filter::topic("fi")).unwrap();
        broker.publish(feed_event("fr", "http://rel/1")).unwrap();
        broker.publish(feed_event("fi", "http://irr/1")).unwrap();
        frontend.pump(0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut recorder = BrowserRecorder::new(UserId(0), 100);
        let totals = frontend.react_all(
            &mut rng,
            &ReactionModel::oracle(),
            |ev| ev.event.topic() == Some("fr"),
            &mut recorder,
            0,
            1000,
        );
        assert_eq!(totals.clicked, 1);
        assert_eq!(totals.deleted, 1);
        // The click went into the recorder (closed loop).
        assert_eq!(recorder.pending(), 1);
        let batch = recorder.flush().unwrap();
        assert_eq!(batch.clicks[0].url, "http://rel/1");
        assert_eq!(batch.clicks[0].referrer.as_deref(), Some("reef://sidebar"));
        assert_eq!(frontend.feedback()["fr"].clicked, 1);
        assert_eq!(frontend.feedback()["fi"].deleted, 1);
    }

    #[test]
    fn fresh_entries_expire_after_ttl() {
        let (broker, mut frontend) = setup();
        frontend.subscribe(&broker, Filter::topic("f")).unwrap();
        broker.publish(feed_event("f", "http://x/1")).unwrap();
        frontend.pump(0);
        assert_eq!(frontend.expire(1), 0, "ttl not reached");
        assert_eq!(frontend.expire(3), 1);
        assert_eq!(frontend.feedback()["f"].expired, 1);
        // Already expired entries do not expire twice.
        assert_eq!(frontend.expire(9), 0);
    }

    #[test]
    fn capacity_evicts_resolved_before_fresh() {
        let broker = Broker::new();
        let mut frontend = SubscriptionFrontend::with_config(
            &broker,
            UserId(0),
            FrontendConfig {
                sidebar_ttl_days: 3,
                sidebar_capacity: 2,
            },
        );
        frontend.subscribe(&broker, Filter::topic("f")).unwrap();
        for i in 0..4 {
            broker
                .publish(feed_event("f", &format!("http://x/{i}")))
                .unwrap();
        }
        frontend.pump(0);
        assert_eq!(frontend.sidebar().len(), 2, "capacity enforced");
    }

    #[test]
    fn reapplying_subscribe_duplicates_are_allowed_but_counted() {
        let (broker, mut frontend) = setup();
        let rec = Recommendation {
            user: UserId(0),
            action: RecAction::Subscribe(Filter::topic("f")),
            reason: "r".into(),
            day: 0,
        };
        frontend.apply(&broker, &rec).unwrap();
        frontend.apply(&broker, &rec).unwrap();
        assert_eq!(frontend.active_count(), 2);
        assert_eq!(frontend.auto_counts().0, 2);
    }
}
