//! The distributed Reef peer (Figure 2).
//!
//! "In this configuration, the attention data stays on the user's host,
//! where the subscription recommendation software analyzes it. …
//! crawling of documents fetched by the user is typically unnecessary as
//! they may be available from the browser's cache. Thus, network load is
//! reduced. Running the recommendation service on the user's host also
//! gives the user full control over the attention data." (§4)
//!
//! A [`ReefPeer`] runs the whole pipeline — recorder, parser,
//! recommendation service, frontend — for one user. Page analysis reads
//! the browser cache (a local fetch against the simulated Web, accounted
//! as zero network bytes), and nothing about the user's attention ever
//! leaves the host. Collaborative recommendations come from the
//! [`crate::recommend::collab`] peer-group exchange instead of a central
//! database.

use crate::crawler::{CrawlOutcome, Crawler, PageClass};
use crate::recommend::content::ContentRecommender;
use crate::recommend::topic::{SubscriptionFeedback, TopicRecommender, TopicRecommenderConfig};
use crate::recommend::Recommendation;
use reef_attention::{host_of, Click, ClickStore};
use reef_simweb::{UserId, WebUniverse};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;

/// Peer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeerConfig {
    /// Pages analyzed from the browser cache per day.
    pub analyze_budget_per_day: usize,
    /// Topic-recommender settings.
    pub topic: TopicRecommenderConfig,
}

impl Default for PeerConfig {
    fn default() -> Self {
        PeerConfig {
            analyze_budget_per_day: 2000,
            topic: TopicRecommenderConfig::default(),
        }
    }
}

/// A per-host Reef deployment for one user.
pub struct ReefPeer {
    user: UserId,
    config: PeerConfig,
    store: ClickStore,
    crawler: Crawler,
    topic_rec: TopicRecommender,
    content_rec: ContentRecommender,
    analyze_queue: VecDeque<String>,
    queued_urls: HashSet<String>,
    feeds_discovered: BTreeSet<String>,
    /// Bytes read from the browser cache (local, not network).
    cache_bytes: u64,
}

impl fmt::Debug for ReefPeer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReefPeer")
            .field("user", &self.user)
            .field("clicks", &self.store.len())
            .field("feeds_discovered", &self.feeds_discovered.len())
            .finish()
    }
}

impl ReefPeer {
    /// A peer for `user` with default configuration.
    pub fn new(user: UserId) -> Self {
        Self::with_config(user, PeerConfig::default())
    }

    /// A peer with explicit configuration.
    pub fn with_config(user: UserId, config: PeerConfig) -> Self {
        ReefPeer {
            user,
            topic_rec: TopicRecommender::with_config(config.topic),
            config,
            store: ClickStore::new(),
            crawler: Crawler::new(),
            content_rec: ContentRecommender::new(),
            analyze_queue: VecDeque::new(),
            queued_urls: HashSet::new(),
            feeds_discovered: BTreeSet::new(),
            cache_bytes: 0,
        }
    }

    /// The user this peer serves.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// Observe one local click. Attention data never leaves the host.
    pub fn observe_click(&mut self, click: Click) {
        debug_assert_eq!(click.user, self.user);
        if !self.crawler.has_crawled(&click.url)
            && self.crawler.host_flag(host_of(&click.url)).is_none()
            && self.queued_urls.insert(click.url.clone())
        {
            self.analyze_queue.push_back(click.url.clone());
        }
        self.store.insert(click);
    }

    /// Run the daily local analysis over the browser cache and emit
    /// recommendations for this user.
    pub fn run_day(&mut self, universe: &WebUniverse, day: u32) -> Vec<Recommendation> {
        for _ in 0..self.config.analyze_budget_per_day {
            let Some(url) = self.analyze_queue.pop_front() else {
                break;
            };
            self.queued_urls.remove(&url);
            // Browser-cache read: same analysis as the server crawler, but
            // the bytes are local.
            match self.crawler.crawl(universe, &url) {
                CrawlOutcome::Fetched {
                    class,
                    feeds,
                    text,
                    bytes,
                } => {
                    self.cache_bytes += bytes as u64;
                    if class == PageClass::Content {
                        for feed in &feeds {
                            self.feeds_discovered.insert(feed.clone());
                        }
                        self.topic_rec.offer_feeds(self.user, feeds);
                        if let Some(text) = text {
                            self.content_rec.add_history_doc(self.user, &text);
                        }
                    }
                }
                CrawlOutcome::AlreadyCrawled
                | CrawlOutcome::HostFlagged(_)
                | CrawlOutcome::NotFound => {}
            }
        }
        self.topic_rec.daily_recommendations(self.user, day)
    }

    /// Judge sidebar feedback and emit unsubscribe recommendations.
    pub fn unsubscribe_pass(
        &mut self,
        feedback: &HashMap<String, SubscriptionFeedback>,
        day: u32,
    ) -> Vec<Recommendation> {
        self.topic_rec
            .unsubscribe_recommendations(self.user, feedback, day)
    }

    /// Accept feed suggestions from peer-group exchange; they enter the
    /// same rate-limited queue as locally discovered feeds.
    pub fn accept_suggestions<I, S>(&mut self, feeds: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.topic_rec.offer_feeds(self.user, feeds);
    }

    /// Seed the local background corpus (a public reference corpus; the
    /// peer has no other users' data).
    pub fn add_background_doc(&mut self, text: &str) {
        self.content_rec.add_background_doc(text);
    }

    /// The user's interest term vector, for peer grouping. Only this
    /// leaves the host — not the attention data itself.
    pub fn term_vector(&self, n: usize) -> HashMap<String, f64> {
        self.content_rec.term_vector(self.user, n)
    }

    /// Feeds discovered locally.
    pub fn feeds_discovered(&self) -> usize {
        self.feeds_discovered.len()
    }

    /// The local click store (never uploaded).
    pub fn store(&self) -> &ClickStore {
        &self.store
    }

    /// The content recommender.
    pub fn content(&self) -> &ContentRecommender {
        &self.content_rec
    }

    /// Bytes read from the browser cache (local I/O, not network).
    pub fn cache_bytes(&self) -> u64 {
        self.cache_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reef_simweb::{ServerKind, WebConfig};

    fn universe() -> WebUniverse {
        WebUniverse::generate(WebConfig::default(), 37)
    }

    fn click(user: u32, tick: u64, url: &str) -> Click {
        Click {
            user: UserId(user),
            day: 0,
            tick,
            url: url.to_owned(),
            referrer: None,
        }
    }

    #[test]
    fn peer_discovers_feeds_from_cache() {
        let u = universe();
        let mut peer = ReefPeer::new(UserId(0));
        let with_feeds = u
            .servers()
            .iter()
            .filter(|s| s.kind == ServerKind::Content && !s.feeds.is_empty())
            .take(10);
        for (i, server) in with_feeds.enumerate() {
            let url = u.page(server.pages[0]).unwrap().url.clone();
            peer.observe_click(click(0, i as u64, &url));
        }
        let recs = peer.run_day(&u, 0);
        assert!(peer.feeds_discovered() > 0);
        assert_eq!(recs.len(), 1, "rate limited to 1/day");
        assert!(peer.cache_bytes() > 0);
    }

    #[test]
    fn suggestions_join_the_queue() {
        let u = universe();
        let mut peer = ReefPeer::new(UserId(0));
        peer.accept_suggestions(["http://peer.example/feed0.rss"]);
        let recs = peer.run_day(&u, 0);
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn attention_stays_local() {
        let u = universe();
        let mut peer = ReefPeer::new(UserId(0));
        let url = {
            let s = u
                .servers()
                .iter()
                .find(|s| s.kind == ServerKind::Content)
                .unwrap();
            u.page(s.pages[0]).unwrap().url.clone()
        };
        peer.observe_click(click(0, 0, &url));
        peer.run_day(&u, 0);
        // The store holds the click; nothing was uploaded anywhere.
        assert_eq!(peer.store().len(), 1);
    }

    #[test]
    fn term_vector_builds_after_analysis() {
        let u = universe();
        let mut peer = ReefPeer::new(UserId(0));
        for _ in 0..3 {
            peer.add_background_doc("generic background filler text");
        }
        let content: Vec<String> = u
            .servers()
            .iter()
            .filter(|s| s.kind == ServerKind::Content)
            .take(5)
            .map(|s| u.page(s.pages[0]).unwrap().url.clone())
            .collect();
        for (i, url) in content.iter().enumerate() {
            peer.observe_click(click(0, i as u64, url));
        }
        peer.run_day(&u, 0);
        assert!(!peer.term_vector(10).is_empty());
    }

    #[test]
    fn unsubscribe_pass_works_locally() {
        let mut peer = ReefPeer::new(UserId(0));
        let mut feedback = HashMap::new();
        feedback.insert(
            "f".to_owned(),
            SubscriptionFeedback {
                delivered: 30,
                clicked: 0,
                deleted: 20,
                expired: 10,
            },
        );
        assert_eq!(peer.unsubscribe_pass(&feedback, 3).len(), 1);
    }
}
