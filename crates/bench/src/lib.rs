//! # reef-bench — experiment harness
//!
//! Shared setup and reporting code for the experiment binaries that
//! regenerate every result of the paper (see `DESIGN.md` §2 for the
//! experiment index) and for the criterion micro-benchmarks.

#![warn(missing_docs)]

use reef_simweb::browse::generate_history;
use reef_simweb::{BrowseConfig, BrowsingHistory, WebConfig, WebUniverse};
use serde::Serialize;
use std::fmt::Display;
use std::path::PathBuf;

/// Default seed of all experiment binaries (override with `REEF_SEED`).
pub const DEFAULT_SEED: u64 = 2006;

/// Read the experiment seed from `REEF_SEED`, defaulting to
/// [`DEFAULT_SEED`].
pub fn seed_from_env() -> u64 {
    std::env::var("REEF_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// Build the §3.2 workload: 5 users, 10 weeks, the paper-calibrated
/// universe.
pub fn e1_setup(seed: u64) -> (WebUniverse, BrowsingHistory) {
    let universe = WebUniverse::generate(WebConfig::paper_e1(), seed);
    let history = generate_history(&universe, &BrowseConfig::paper_e1(), seed);
    (universe, history)
}

/// Build the §3.3 workload: 1 user, 6 weeks, >10k page views.
pub fn e2_setup(seed: u64) -> (WebUniverse, BrowsingHistory) {
    let universe = WebUniverse::generate(WebConfig::paper_e2(), seed);
    let history = generate_history(&universe, &BrowseConfig::paper_e2(), seed);
    (universe, history)
}

/// A row of a paper-vs-measured table.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Quantity name.
    pub metric: String,
    /// The value the paper reports (empty when the paper gives none).
    pub paper: String,
    /// The value this reproduction measures.
    pub measured: String,
}

impl Row {
    /// Build a row.
    pub fn new(metric: impl Display, paper: impl Display, measured: impl Display) -> Self {
        Row {
            metric: metric.to_string(),
            paper: paper.to_string(),
            measured: measured.to_string(),
        }
    }
}

/// Print a paper-vs-measured table to stdout.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    let w_metric = rows
        .iter()
        .map(|r| r.metric.len())
        .max()
        .unwrap_or(6)
        .max(6);
    let w_paper = rows.iter().map(|r| r.paper.len()).max().unwrap_or(5).max(5);
    let w_meas = rows
        .iter()
        .map(|r| r.measured.len())
        .max()
        .unwrap_or(8)
        .max(8);
    println!(
        "{:<w_metric$}  {:>w_paper$}  {:>w_meas$}",
        "metric", "paper", "measured"
    );
    println!("{}", "-".repeat(w_metric + w_paper + w_meas + 4));
    for row in rows {
        println!(
            "{:<w_metric$}  {:>w_paper$}  {:>w_meas$}",
            row.metric, row.paper, row.measured
        );
    }
}

/// Write a JSON result file under `results/` (created on demand). Returns
/// the path written, or `None` if the directory could not be created.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> Option<PathBuf> {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).ok()?;
    std::fs::write(&path, json).ok()?;
    Some(path)
}

/// Label identifying the build a result came from: `REEF_BENCH_LABEL`
/// when set, else `git describe --always --dirty`, else `"unknown"`.
pub fn bench_label() -> String {
    if let Ok(label) = std::env::var("REEF_BENCH_LABEL") {
        if !label.is_empty() {
            return label;
        }
    }
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The envelope [`emit_json`] wraps every experiment result in, so all
/// `results/*.json` files share a `{name, label, metrics}` shape.
struct ResultEnvelope {
    envelope: serde::Value,
}

impl Serialize for ResultEnvelope {
    fn to_value(&self) -> serde::Value {
        self.envelope.clone()
    }
}

/// Write an experiment result under `results/<name>.json`, wrapped in the
/// shared `{name, label, metrics}` envelope (label from [`bench_label`]).
/// Returns the path written, or `None` if writing failed.
pub fn emit_json<T: Serialize>(name: &str, metrics: &T) -> Option<PathBuf> {
    let envelope = ResultEnvelope {
        envelope: serde::Value::Map(vec![
            ("name".to_owned(), serde::Value::Str(name.to_owned())),
            ("label".to_owned(), serde::Value::Str(bench_label())),
            ("metrics".to_owned(), metrics.to_value()),
        ]),
    };
    write_json(name, &envelope)
}

/// Format a percent value with sign.
pub fn pct(x: f64) -> String {
    format!("{x:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setups_build_and_are_deterministic() {
        let (u1, h1) = e1_setup(1);
        let (_u2, h2) = e1_setup(1);
        assert_eq!(h1.requests.len(), h2.requests.len());
        assert!(u1.feeds().len() > 100);
    }

    #[test]
    fn rows_format() {
        let rows = vec![Row::new("total requests", "77000", "76500")];
        print_table("test", &rows);
        assert_eq!(rows[0].metric, "total requests");
    }

    #[test]
    fn pct_formats_with_sign() {
        assert_eq!(pct(34.0), "+34.0%");
        assert_eq!(pct(-2.5), "-2.5%");
    }

    #[test]
    fn bench_label_is_never_empty() {
        assert!(!bench_label().is_empty());
    }
}
