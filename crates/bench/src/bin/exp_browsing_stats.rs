//! **E1** — §3.2 browsing-history statistics.
//!
//! "Using ten weeks of browsing history from five test users, we recorded
//! over 77000 requests to 2528 distinct Web servers. 70% of the requests
//! were to 1713 advertisement servers, and 807 servers were visited only
//! once. On the remaining 906 Web servers, 424 distinct RSS feeds were
//! found."
//!
//! This binary regenerates the table from the calibrated synthetic
//! workload, then validates the crawler pipeline against the same
//! history: every URL the users clicked is crawled, ad/spam/multimedia
//! hosts are flagged by *content*, and feeds are discovered on the
//! crawl-worthy remainder.
//!
//! Note on the paper's arithmetic: 1713 (ad) + 906 (remaining) + 807
//! (single-visit) exceeds 2528, so the paper's categories overlap (most
//! single-visit servers are one-off trackers). We report the same
//! categories with the overlap stated explicitly.

use reef_attention::Click;
use reef_bench::{e1_setup, print_table, seed_from_env, write_json, Row};
use reef_core::{CentralReefServer, ServerConfig};
use reef_simweb::browsing_stats;
use serde::Serialize;

#[derive(Serialize)]
struct E1Result {
    seed: u64,
    total_requests: u64,
    distinct_servers: u64,
    ad_servers: u64,
    ad_request_share_pct: f64,
    single_visit_servers: u64,
    crawlworthy_servers: u64,
    discoverable_feeds: u64,
    crawler_feeds_found: usize,
    crawler_hosts_flagged: usize,
}

fn main() {
    let seed = seed_from_env();
    let (universe, history) = e1_setup(seed);
    let stats = browsing_stats(&universe, &history);

    print_table(
        "E1: ten weeks of browsing by five users (paper §3.2)",
        &[
            Row::new("total requests", "77000+", stats.total_requests),
            Row::new("distinct servers", "2528", stats.distinct_servers),
            Row::new("ad servers", "1713", stats.ad_servers),
            Row::new(
                "ad request share",
                "70%",
                format!("{:.1}%", stats.ad_request_share * 100.0),
            ),
            Row::new("single-visit servers", "807", stats.single_visit_servers),
            Row::new("crawl-worthy servers", "906", stats.crawlworthy_servers),
            Row::new("distinct RSS feeds found", "424", stats.discoverable_feeds),
        ],
    );

    // Now push the same history through the actual Reef pipeline: ingest
    // every click into the centralized server and let its crawler classify
    // servers and discover feeds by content.
    let mut server = CentralReefServer::with_config(ServerConfig {
        crawl_budget_per_day: usize::MAX >> 1,
        ..ServerConfig::default()
    });
    for request in &history.requests {
        server.ingest_batch(reef_attention::ClickBatch {
            user: request.user,
            clicks: vec![Click::from_request(request)],
        });
    }
    server.run_day(&universe, 0);
    let crawl = server.crawl_stats();

    print_table(
        "E1 (pipeline): the crawler re-derives the table from content alone",
        &[
            Row::new(
                "feeds discovered by crawler",
                "424",
                server.feeds_discovered(),
            ),
            Row::new(
                "hosts flagged (ad+spam+mm)",
                "~1713",
                server.flagged_hosts(),
            ),
            Row::new("pages fetched", "", crawl.fetched),
            Row::new("fetches skipped (flagged host)", "", crawl.skipped_flagged),
            Row::new("fetch bytes", "", crawl.bytes_fetched),
        ],
    );

    let result = E1Result {
        seed,
        total_requests: stats.total_requests,
        distinct_servers: stats.distinct_servers,
        ad_servers: stats.ad_servers,
        ad_request_share_pct: stats.ad_request_share * 100.0,
        single_visit_servers: stats.single_visit_servers,
        crawlworthy_servers: stats.crawlworthy_servers,
        discoverable_feeds: stats.discoverable_feeds,
        crawler_feeds_found: server.feeds_discovered(),
        crawler_hosts_flagged: server.flagged_hosts(),
    };
    if let Some(path) = write_json("e1_browsing_stats", &result) {
        println!("\nresult written to {}", path.display());
    }
}
