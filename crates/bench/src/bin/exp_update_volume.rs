//! **E6** — §3.2 update-volume observation and the unsubscribe loop.
//!
//! "Even though most feeds are updated infrequently, we still found
//! enough feeds to overwhelm any user with updates. We are currently
//! investigating approaches to using attention data for filtering of
//! updates and for removing subscriptions."
//!
//! This experiment measures sidebar volume under three policies on the
//! same workload: (a) subscribe to *everything* discovered and never
//! unsubscribe (the overwhelming baseline); (b) rate-limited
//! recommendations without the feedback loop; (c) the full closed loop
//! with attention-driven unsubscription — the paper's proposed remedy.

use reef_bench::{e1_setup, print_table, seed_from_env, write_json, Row};
use reef_core::{CentralizedReef, ReefConfig, TopicRecommenderConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Policy {
    name: String,
    subscriptions: u64,
    unsubscriptions: u64,
    events_delivered: u64,
    events_per_user_day: f64,
    clicked: u64,
    expired: u64,
}

#[derive(Serialize)]
struct E6Result {
    seed: u64,
    policies: Vec<Policy>,
}

fn run(name: &str, limit: usize, unsubscribe_ctr: f64, seed: u64) -> Policy {
    let (universe, history) = e1_setup(seed);
    let mut config = ReefConfig::default();
    config.server.topic = TopicRecommenderConfig {
        max_per_user_per_day: limit,
        unsubscribe_ctr,
        ..TopicRecommenderConfig::default()
    };
    let mut reef = CentralizedReef::new(&history.profiles, config, seed);
    let mut subs = 0u64;
    let mut unsubs = 0u64;
    let mut events = 0u64;
    let mut clicked = 0u64;
    let mut expired = 0u64;
    for day in 0..history.days {
        let report = reef.run_day(&universe, &history, day);
        subs += report.subscribe_recs;
        unsubs += report.unsubscribe_recs;
        events += report.events_delivered;
        clicked += report.clicked;
        expired += report.expired;
    }
    let user_days = history.profiles.len() as f64 * history.days as f64;
    Policy {
        name: name.to_owned(),
        subscriptions: subs,
        unsubscriptions: unsubs,
        events_delivered: events,
        events_per_user_day: events as f64 / user_days,
        clicked,
        expired,
    }
}

fn main() {
    let seed = seed_from_env();
    // (a) Everything, no feedback: unsubscribe_ctr 0 disables removals.
    let flood = run("subscribe-everything", usize::MAX >> 1, 0.0, seed);
    // (b) Rate-limited, no feedback.
    let limited = run("rate-limited, no unsubscribe", 1, 0.0, seed);
    // (c) Full closed loop.
    let closed = run("closed loop (rate limit + unsubscribe)", 1, 0.12, seed);

    let rows: Vec<Row> = [&flood, &limited, &closed]
        .iter()
        .map(|p| {
            Row::new(
                p.name.clone(),
                "",
                format!(
                    "{} subs, {} unsubs, {:.1} events/user/day",
                    p.subscriptions, p.unsubscriptions, p.events_per_user_day
                ),
            )
        })
        .collect();
    print_table(
        "E6: sidebar update volume under three subscription policies (§3.2/§6)",
        &rows,
    );
    println!(
        "\nsubscribing to everything delivers {:.1}x the events of the closed loop \
         (paper: \"enough feeds to overwhelm any user with updates\")",
        flood.events_delivered as f64 / closed.events_delivered.max(1) as f64
    );
    println!(
        "the closed loop removed {} ignored subscriptions, cutting volume {:.0}% below \
         the no-unsubscribe policy",
        closed.unsubscriptions,
        100.0 * (1.0 - closed.events_delivered as f64 / limited.events_delivered.max(1) as f64)
    );

    let result = E6Result {
        seed,
        policies: vec![flood, limited, closed],
    };
    if let Some(path) = write_json("e6_update_volume", &result) {
        println!("\nresult written to {}", path.display());
    }
}
