//! **E2** — §3.3 content-based precision curve.
//!
//! "From a log of six weeks of Web browsing by a test user, we extracted
//! the most important terms from over 10,000 pages visited … and used the
//! top N of them to form content-based queries. (We varied N between 5
//! and 500.) … the query increases the precision of recommended content
//! regardless of the number of terms used … the optimal number of terms
//! required was 30, with which the precision peaked at 34% improvement …
//! With only five terms, precision improved by 12%."
//!
//! This binary rebuilds that experiment end to end: browsing history →
//! Offer-Weight term selection → BM25 ranking of a 500-story archive →
//! precision improvement over airing order, swept over N. It also reports
//! the footnote-1 ablation (classic vs TF-integrated Offer Weight).

use reef_bench::{e2_setup, pct, print_table, seed_from_env, write_json, Row};
use reef_simweb::{RequestKind, TopicId};
use reef_textindex::OfferWeightMode;
use reef_videonews::{
    ArchiveConfig, ExperimentConfig, VideoArchive, VideoExperiment, PAPER_N_SWEEP,
};
use serde::Serialize;

#[derive(Serialize)]
struct E2Point {
    n_terms: usize,
    precision: f64,
    baseline: f64,
    improvement_pct: f64,
}

#[derive(Serialize)]
struct E2Result {
    seed: u64,
    history_pages: usize,
    relevant_stories: usize,
    tf_integrated: Vec<E2Point>,
    classic: Vec<E2Point>,
}

fn main() {
    let seed = seed_from_env();
    let (universe, history) = e2_setup(seed);
    let profile = &history.profiles[0];

    // The >10,000 page views of the user, deduplicated to distinct pages
    // for indexing (the term-selection statistics need each *document*
    // once; visit counts still shape which pages are present at all).
    let mut seen_urls = std::collections::HashSet::new();
    let mut page_views = 0usize;
    let mut history_texts: Vec<&str> = Vec::new();
    for r in history
        .requests
        .iter()
        .filter(|r| r.kind == RequestKind::Page)
    {
        page_views += 1;
        if !seen_urls.insert(r.url.as_str()) {
            continue;
        }
        if let Some(p) = universe.fetch(&r.url) {
            if p.content_type == "text/html" && !p.text.is_empty() {
                history_texts.push(p.text.as_str());
            }
        }
    }

    // Background: a *sample* of pages the user never visited. A small
    // reference sample (the paper used pre-existing collection statistics,
    // not a matched crawl) leaves sampling noise in the Robertson
    // weights; that noise is what lets idiosyncratic terms creep into
    // long queries and produce the paper's dilution beyond N=30. A
    // perfectly matched background makes term selection unrealistically
    // clean and the curve monotone.
    let background_texts: Vec<&str> = universe
        .pages()
        .iter()
        .filter(|p| p.content_type == "text/html" && !seen_urls.contains(p.url.as_str()))
        .step_by(4)
        .take(1400)
        .map(|p| p.text.as_str())
        .collect();

    // The 500-story archive, from the same topic universe. Judgments are
    // noisy: the test user's hand-ranking of "interesting" correlates
    // imperfectly with browsing-derived interests, which is what bounds
    // the paper's peak at +34% rather than a multiple. One judgment draw
    // is one (very noisy) user; we report the mean over several draws.
    let archive = VideoArchive::generate(universe.model(), ArchiveConfig::default(), seed);
    let interests: Vec<TopicId> = profile.interests.iter().map(|(t, _)| *t).collect();
    const P_ON: f64 = 0.445;
    const P_OFF: f64 = 0.25;
    const JUDGMENT_DRAWS: u64 = 25;
    let draws: Vec<Vec<bool>> = (0..JUDGMENT_DRAWS)
        .map(|d| archive.noisy_judgments(&interests, P_ON, P_OFF, seed.wrapping_add(d * 7919)))
        .collect();
    let relevant = draws
        .iter()
        .map(|j| j.iter().filter(|x| **x).count())
        .sum::<usize>()
        / draws.len();

    let experiment = VideoExperiment::prepare(
        &archive,
        history_texts.iter().copied(),
        background_texts.iter().copied(),
        draws[0].clone(),
        ExperimentConfig::default(),
    );

    println!(
        "history: {page_views} page views ({} distinct pages) over {} days; \
         archive: {} stories, {relevant} judged interesting (mean of {JUDGMENT_DRAWS} draws)",
        experiment.history_len(),
        history.days,
        archive.len(),
    );

    // Mean curve over judgment draws: the ranking per N is computed once,
    // then evaluated against every draw.
    let mean_curve = |mode: OfferWeightMode| -> Vec<reef_videonews::CurvePoint> {
        PAPER_N_SWEEP
            .iter()
            .map(|&n| {
                let ranked = experiment.ranked_ids(n, mode);
                let mut precision = 0.0;
                let mut baseline = 0.0;
                for judgments in &draws {
                    let c = experiment.evaluate_ranking(&ranked, judgments);
                    precision += c.precision;
                    baseline += c.baseline_precision;
                }
                precision /= draws.len() as f64;
                baseline /= draws.len() as f64;
                reef_videonews::CurvePoint {
                    n_terms: n,
                    comparison: reef_textindex::RankingComparison {
                        precision,
                        baseline_precision: baseline,
                        improvement_pct: reef_textindex::relative_improvement_pct(
                            precision, baseline,
                        ),
                        k: 100,
                    },
                }
            })
            .collect()
    };
    let curve = mean_curve(OfferWeightMode::TfIntegrated);
    let classic = mean_curve(OfferWeightMode::Classic);

    let mut rows = Vec::new();
    for point in &curve {
        let paper = match point.n_terms {
            5 => "+12%".to_owned(),
            30 => "+34% (peak)".to_owned(),
            _ => "positive".to_owned(),
        };
        rows.push(Row::new(
            format!("improvement @ N={}", point.n_terms),
            paper,
            pct(point.comparison.improvement_pct),
        ));
    }
    print_table(
        "E2: precision improvement over airing order (paper §3.3)",
        &rows,
    );

    let peak = curve
        .iter()
        .max_by(|a, b| {
            a.comparison
                .improvement_pct
                .partial_cmp(&b.comparison.improvement_pct)
                .unwrap()
        })
        .expect("curve not empty");
    println!(
        "\npeak: {} at N={} (paper: +34% at N=30)",
        pct(peak.comparison.improvement_pct),
        peak.n_terms
    );

    let ablation_rows: Vec<Row> = curve
        .iter()
        .zip(&classic)
        .map(|(tf, cl)| {
            Row::new(
                format!("N={}", tf.n_terms),
                format!("classic {}", pct(cl.comparison.improvement_pct)),
                format!("tf-integrated {}", pct(tf.comparison.improvement_pct)),
            )
        })
        .collect();
    print_table(
        "E2 ablation: classic vs TF-integrated Offer Weight (footnote 1)",
        &ablation_rows,
    );

    let to_points = |c: &[reef_videonews::CurvePoint]| {
        c.iter()
            .map(|p| E2Point {
                n_terms: p.n_terms,
                precision: p.comparison.precision,
                baseline: p.comparison.baseline_precision,
                improvement_pct: p.comparison.improvement_pct,
            })
            .collect::<Vec<_>>()
    };
    let result = E2Result {
        seed,
        history_pages: experiment.history_len(),
        relevant_stories: relevant,
        tf_integrated: to_points(&curve),
        classic: to_points(&classic),
    };
    if let Some(path) = write_json("e2_video_precision", &result) {
        println!("\nresult written to {}", path.display());
    }
}
