//! **E3** — §6 recommendation rate.
//!
//! "On average, every user received one new feed recommendation per day
//! during our test period."
//!
//! Runs the full centralized closed loop over the E1 workload (5 users,
//! 70 days) and reports new-feed recommendations per user per day,
//! plus the ablation the §3.2 discussion motivates: without ad/spam
//! filtering and rate limiting, discovery alone "can reveal many
//! potential sources" and would flood users.

use reef_bench::{e1_setup, print_table, seed_from_env, write_json, Row};
use reef_core::{CentralizedReef, ReefConfig, TopicRecommenderConfig};
use serde::Serialize;

#[derive(Serialize)]
struct E3Result {
    seed: u64,
    users: usize,
    days: u32,
    subscribe_recs: u64,
    recs_per_user_day: f64,
    unlimited_recs_per_user_day: f64,
    events_delivered: u64,
    clicked: u64,
    deleted: u64,
    expired: u64,
}

fn run(limit_per_day: usize, seed: u64) -> (u64, u64, u64, u64, u64, usize, u32) {
    let (universe, history) = e1_setup(seed);
    let mut config = ReefConfig::default();
    config.server.topic = TopicRecommenderConfig {
        max_per_user_per_day: limit_per_day,
        ..TopicRecommenderConfig::default()
    };
    let mut reef = CentralizedReef::new(&history.profiles, config, seed);
    let mut subs = 0u64;
    let mut events = 0u64;
    let mut clicked = 0u64;
    let mut deleted = 0u64;
    let mut expired = 0u64;
    for day in 0..history.days {
        let report = reef.run_day(&universe, &history, day);
        subs += report.subscribe_recs;
        events += report.events_delivered;
        clicked += report.clicked;
        deleted += report.deleted;
        expired += report.expired;
    }
    (
        subs,
        events,
        clicked,
        deleted,
        expired,
        history.profiles.len(),
        history.days,
    )
}

fn main() {
    let seed = seed_from_env();
    let (subs, events, clicked, deleted, expired, users, days) = run(1, seed);
    let per_user_day = subs as f64 / (users as f64 * days as f64);

    // Ablation: no rate limiting — every discovered feed is recommended.
    let (unlimited_subs, ..) = run(usize::MAX >> 1, seed);
    let unlimited_per_user_day = unlimited_subs as f64 / (users as f64 * days as f64);

    print_table(
        "E3: recommendation rate over the closed loop (paper §6)",
        &[
            Row::new("users × days", "5 × 70", format!("{users} × {days}")),
            Row::new("feed recommendations", "", subs),
            Row::new(
                "new recommendations / user / day",
                "≈1",
                format!("{per_user_day:.2}"),
            ),
            Row::new(
                "without rate limit (ablation)",
                "\"overwhelm any user\"",
                format!("{unlimited_per_user_day:.2}/user/day"),
            ),
            Row::new("feed events delivered", "", events),
            Row::new("sidebar clicks (positive)", "", clicked),
            Row::new("sidebar deletes (negative)", "", deleted),
            Row::new("sidebar expiries", "", expired),
        ],
    );

    let result = E3Result {
        seed,
        users,
        days,
        subscribe_recs: subs,
        recs_per_user_day: per_user_day,
        unlimited_recs_per_user_day: unlimited_per_user_day,
        events_delivered: events,
        clicked,
        deleted,
        expired,
    };
    if let Some(path) = write_json("e3_recommendation_rate", &result) {
        println!("\nresult written to {}", path.display());
    }
}
