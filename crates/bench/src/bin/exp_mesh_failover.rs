//! **E6** — mesh failover over live daemons: a 3-broker `--mesh` ring on
//! real TCP sockets, publish-to-deliver latency measured with both paths
//! up, then the direct link killed mid-run, then steady-state on the
//! surviving two-hop path.
//!
//! The subscriber sits on broker `a`, the publisher on broker `c`; the
//! ring gives `c` a direct route `[a]` and a failover alternate
//! `[a, b]`. Killing the direct link exercises the path-vector layer's
//! self-stabilization: the blackout window until the first delivery over
//! the promoted alternate is the *failover gap*, and the before/after
//! latency distributions quantify the price of the extra hop.

use reef_bench::{emit_json, print_table, Row};
use reef_pubsub::{Event, Filter, NodeId};
use reef_wire::{BrokerServer, Client};
use serde::Serialize;
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(10);
/// Publishes measured per steady-state phase.
const SAMPLES: usize = 200;

#[derive(Serialize)]
struct Phase {
    publishes: usize,
    delivered: usize,
    mean_us: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
}

#[derive(Serialize)]
struct E6Result {
    brokers: usize,
    topology: &'static str,
    direct_path_up: Phase,
    after_failover: Phase,
    failover_gap_ms: f64,
    probes_lost_in_gap: usize,
    reroutes_at_publisher: u64,
    duplicates_suppressed_at_subscriber: u64,
    alternates_before_kill: u64,
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

/// Poll `probe` until it returns true or the deadline passes.
fn wait_for(what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + WAIT;
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Publish `SAMPLES` events at `publisher` and clock each one into the
/// subscriber's socket. Exactly-once is asserted as a side effect: every
/// publish waits for precisely one delivery.
fn measure_phase(publisher: &Client, subscriber: &Client, tag: &str) -> Phase {
    let mut latencies_us: Vec<u64> = Vec::with_capacity(SAMPLES);
    let mut delivered = 0usize;
    for i in 0..SAMPLES {
        let started = Instant::now();
        publisher
            .publish(Event::topical("mesh-bench", &format!("{tag}-{i}")))
            .expect("publish");
        if subscriber.recv_delivery(WAIT).is_some() {
            delivered += 1;
            latencies_us.push(started.elapsed().as_micros() as u64);
        }
    }
    latencies_us.sort_unstable();
    Phase {
        publishes: SAMPLES,
        delivered,
        mean_us: latencies_us.iter().sum::<u64>() as f64 / latencies_us.len().max(1) as f64,
        p50_us: percentile(&latencies_us, 0.50),
        p95_us: percentile(&latencies_us, 0.95),
        p99_us: percentile(&latencies_us, 0.99),
    }
}

fn main() {
    // The ring: a, b — a, c — a + b (the third dial closes the cycle).
    let a = BrokerServer::builder()
        .name("bench-mesh-a")
        .mesh(true)
        .bind("127.0.0.1:0")
        .expect("bind a");
    let b = BrokerServer::builder()
        .name("bench-mesh-b")
        .mesh(true)
        .peer(a.local_addr().to_string())
        .bind("127.0.0.1:0")
        .expect("bind b");
    let c = BrokerServer::builder()
        .name("bench-mesh-c")
        .mesh(true)
        .peer(a.local_addr().to_string())
        .peer(b.local_addr().to_string())
        .bind("127.0.0.1:0")
        .expect("bind c");
    wait_for("ring links", || {
        a.federation_stats().peers == 2
            && b.federation_stats().peers == 2
            && c.federation_stats().peers == 2
    });

    let subscriber = Client::connect_as(a.local_addr(), "bench-sub").expect("connect sub");
    subscriber
        .subscribe(Filter::topic("mesh-bench"))
        .expect("subscribe");
    wait_for("route + alternate at the publisher", || {
        let stats = c.federation_stats();
        stats.routing_entries >= 1 && stats.mesh_alternates >= 1
    });
    let alternates_before_kill = c.federation_stats().mesh_alternates;
    let publisher = Client::connect_as(c.local_addr(), "bench-pub").expect("connect pub");

    let direct_path_up = measure_phase(&publisher, &subscriber, "up");

    // Kill the direct a — c link from a's side mid-run, then hammer the
    // ring with probes until one crosses the promoted two-hop path: that
    // window is the failover gap.
    let direct = a
        .federation()
        .peer_stats()
        .into_iter()
        .find(|p| p.broker == "bench-mesh-c")
        .expect("a's link to c")
        .link;
    let killed = Instant::now();
    a.federation().peer_disconnected(NodeId(direct));
    let mut probes = 0usize;
    let failover_gap_ms = loop {
        publisher
            .publish(Event::topical("mesh-bench", &format!("probe-{probes}")))
            .expect("probe publish");
        probes += 1;
        if subscriber
            .recv_delivery(Duration::from_millis(10))
            .is_some()
        {
            break killed.elapsed().as_secs_f64() * 1e3;
        }
        assert!(
            killed.elapsed() < WAIT,
            "failover never delivered a probe through the alternate path"
        );
    };
    // Late copies of probes routed before the teardown finished may still
    // trickle in; drain them so the after-phase latencies are clean.
    while subscriber
        .recv_delivery(Duration::from_millis(100))
        .is_some()
    {}

    let after_failover = measure_phase(&publisher, &subscriber, "rerouted");

    let reroutes_at_publisher = c.federation_stats().mesh_reroutes;
    let duplicates_suppressed_at_subscriber = a.federation_stats().mesh_duplicates_suppressed;

    print_table(
        "E6: mesh failover on a 3-broker TCP ring (direct path vs promoted alternate)",
        &[
            Row::new(
                "publish→deliver p50",
                format!("direct {} us", direct_path_up.p50_us),
                format!("rerouted {} us", after_failover.p50_us),
            ),
            Row::new(
                "publish→deliver p95",
                format!("direct {} us", direct_path_up.p95_us),
                format!("rerouted {} us", after_failover.p95_us),
            ),
            Row::new(
                "publish→deliver p99",
                format!("direct {} us", direct_path_up.p99_us),
                format!("rerouted {} us", after_failover.p99_us),
            ),
            Row::new(
                "deliveries",
                format!("direct {}/{}", direct_path_up.delivered, SAMPLES),
                format!("rerouted {}/{}", after_failover.delivered, SAMPLES),
            ),
            Row::new(
                "failover gap",
                "",
                format!("{failover_gap_ms:.1} ms ({probes} probes)"),
            ),
            Row::new(
                "reroutes at publisher",
                "",
                format!("{reroutes_at_publisher}"),
            ),
            Row::new(
                "ring duplicates suppressed",
                "",
                format!("{duplicates_suppressed_at_subscriber}"),
            ),
        ],
    );
    println!(
        "\nthe ring survives losing its direct link: {}/{} deliveries after failover, \
         a {:.1} ms blackout, and the seen-cache ate {} duplicate copies on the way.",
        after_failover.delivered, SAMPLES, failover_gap_ms, duplicates_suppressed_at_subscriber,
    );

    let result = E6Result {
        brokers: 3,
        topology: "ring",
        direct_path_up,
        after_failover,
        failover_gap_ms,
        probes_lost_in_gap: probes.saturating_sub(1),
        reroutes_at_publisher,
        duplicates_suppressed_at_subscriber,
        alternates_before_kill,
    };
    if let Some(path) = emit_json("BENCH_mesh", &result) {
        println!("result written to {}", path.display());
    }

    drop(subscriber);
    drop(publisher);
    c.shutdown();
    b.shutdown();
    a.shutdown();
}
