//! Connection-scaling experiment: publish-to-deliver latency with tens of
//! thousands of live subscribers on the sharded epoll transport.
//!
//! The daemon runs in a child process (this binary re-executed with
//! `--serve N`) so each side gets its own file-descriptor budget: one
//! descriptor per connection on the server (the loop owns the socket
//! outright), one per raw subscriber socket here. Subscribers handshake
//! over the v2 binary codec and then just read; a pool of reader threads
//! stamps every `Deliver` frame as it lands, giving the publish-to-deliver
//! distribution of a full fan-out.
//!
//! Two phases run back to back:
//!
//! 1. **baseline** — one event loop, `REEF_WIRE_BASELINE` (default 1000)
//!    subscribers: the pre-sharding configuration.
//! 2. **sharded** — `REEF_WIRE_LOOPS` loops (default `max(4, cores)`),
//!    `REEF_WIRE_CONNS` subscribers (default 10000).
//!
//! The headline comparison is per-subscriber p95 (p95 divided by the
//! subscriber count): sharding holds the per-subscriber cost at 10k
//! connections to no worse than the single loop pays at 1k.
//!
//! Knobs: `REEF_WIRE_CONNS`, `REEF_WIRE_LOOPS`, `REEF_WIRE_ROUNDS`
//! (default 20), `REEF_WIRE_BASELINE`, `REEF_WIRE_READERS` (default 8).
//! Writes `results/BENCH_wire.json`.

use reef_bench::{emit_json, print_table, Row};
use reef_pubsub::{Event, Filter};
use reef_wire::{BrokerServer, Client, ClientFrame, CodecKind, Frame, Request, TransportKind};
use serde::Serialize;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// One measured configuration.
#[derive(Debug, Serialize)]
struct PhaseResult {
    phase: String,
    loop_threads: usize,
    connections: usize,
    rounds: usize,
    setup_ms: f64,
    deliveries: u64,
    mean_us: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    /// p95 divided by the subscriber count — the scale-free number the
    /// two phases are compared on.
    per_sub_p95_ns: f64,
}

#[derive(Debug, Serialize)]
struct WireScaleResult {
    baseline: PhaseResult,
    sharded: PhaseResult,
    /// sharded per-subscriber p95 over baseline per-subscriber p95;
    /// <= 1.0 means sharding holds the line at scale.
    p95_per_sub_ratio: f64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * p).round() as usize]
}

/// Child-process mode: run the daemon, print the bound port, hold until
/// the parent closes our stdin.
fn serve(loop_threads: usize) {
    let server = BrokerServer::builder()
        .transport(TransportKind::Epoll)
        .loop_threads(loop_threads)
        .bind("127.0.0.1:0")
        .expect("bind daemon");
    println!("PORT {}", server.local_addr().port());
    std::io::stdout().flush().expect("flush port line");
    let mut sink = String::new();
    let _ = std::io::stdin().read_to_string(&mut sink);
    server.shutdown();
}

fn spawn_server(loop_threads: usize) -> (Child, SocketAddr) {
    let exe = std::env::current_exe().expect("current exe");
    let mut child = Command::new(exe)
        .args(["--serve", &loop_threads.to_string()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn daemon process");
    let stdout = child.stdout.take().expect("daemon stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read port line");
    let port: u16 = line
        .trim()
        .strip_prefix("PORT ")
        .and_then(|p| p.parse().ok())
        .expect("daemon announced its port");
    (child, SocketAddr::from(([127, 0, 0, 1], port)))
}

/// Connect one raw subscriber: v2-binary handshake, subscribe to the
/// bench topic, hand back the read half. Connects are retried briefly so
/// a momentarily full accept backlog doesn't kill a 10k-socket ramp-up.
fn connect_subscriber(addr: SocketAddr, name: &str) -> BufReader<TcpStream> {
    let codec = CodecKind::Binary.codec();
    let mut attempts = 0;
    let mut stream = loop {
        match TcpStream::connect(addr) {
            Ok(stream) => break stream,
            Err(err) => {
                attempts += 1;
                assert!(attempts < 50, "connect {name}: {err}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };
    stream.set_nodelay(true).expect("nodelay");
    for (corr, request) in [
        (
            1,
            Request::Hello {
                version: 2,
                client: name.to_string(),
            },
        ),
        (
            2,
            Request::Subscribe {
                filter: Filter::topic("bench"),
            },
        ),
    ] {
        codec
            .encode_client(&ClientFrame { corr, request })
            .expect("encode")
            .write_to(&mut stream)
            .expect("handshake write");
        Frame::read_from(&mut stream)
            .expect("handshake read")
            .expect("handshake reply");
    }
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    // Small read buffers: 10k sockets at BufReader's 8 KiB default is
    // 80 MB of cold buffer memory, which turns the client side into a
    // cache benchmark instead of a wire benchmark.
    BufReader::with_capacity(512, stream)
}

/// Bring up a daemon with `loop_threads` loops, attach `connections`
/// subscribers, run `rounds` publishes and return the latency
/// distribution.
fn run_phase(phase: &str, loop_threads: usize, connections: usize, rounds: usize) -> PhaseResult {
    let readers = env_usize("REEF_WIRE_READERS", 8).min(connections);
    let (mut daemon, addr) = spawn_server(loop_threads);
    eprintln!(
        "[{phase}] daemon up on {addr} with {loop_threads} loop(s); \
         connecting {connections} subscribers with {readers} threads"
    );

    let setup_started = Instant::now();
    // Reader threads own their slice of sockets end to end: they connect
    // them (spreading the ramp-up), then stamp every delivery.
    let start = Arc::new(Barrier::new(readers + 1));
    let done = Arc::new(Barrier::new(readers + 1));
    let t0 = Arc::new(Mutex::new(Instant::now()));
    let mut slice_sizes = vec![connections / readers; readers];
    for extra in slice_sizes.iter_mut().take(connections % readers) {
        *extra += 1;
    }
    let threads: Vec<std::thread::JoinHandle<Vec<u64>>> = slice_sizes
        .iter()
        .enumerate()
        .map(|(reader_id, &slice)| {
            let start = Arc::clone(&start);
            let done = Arc::clone(&done);
            let t0 = Arc::clone(&t0);
            std::thread::spawn(move || {
                let mut sockets: Vec<BufReader<TcpStream>> = (0..slice)
                    .map(|i| connect_subscriber(addr, &format!("sub-{reader_id}-{i}")))
                    .collect();
                let mut latencies = Vec::with_capacity(slice * rounds);
                start.wait(); // sockets ready
                for _ in 0..rounds {
                    start.wait(); // round open: t0 is set, publish follows
                    for socket in sockets.iter_mut() {
                        Frame::read_from(socket).expect("read").expect("deliver");
                        let elapsed = t0.lock().expect("t0").elapsed();
                        latencies.push(elapsed.as_micros() as u64);
                    }
                    done.wait(); // every socket drained
                }
                latencies
            })
        })
        .collect();

    start.wait(); // all subscribers connected
    let setup_ms = setup_started.elapsed().as_secs_f64() * 1e3;
    let publisher = Client::connect_as(addr, "wire-scale-publisher").expect("connect publisher");
    for round in 0..rounds {
        *t0.lock().expect("t0") = Instant::now();
        start.wait();
        let outcome = publisher
            .publish(Event::topical("bench", &format!("round-{round}")))
            .expect("publish");
        assert_eq!(
            outcome.delivered as usize, connections,
            "every subscriber matched"
        );
        done.wait();
    }

    let mut latencies: Vec<u64> = Vec::with_capacity(connections * rounds);
    for handle in threads {
        latencies.extend(handle.join().expect("reader thread"));
    }
    drop(publisher);
    drop(daemon.stdin.take()); // EOF tells the daemon to shut down
    let _ = daemon.wait();

    latencies.sort_unstable();
    let deliveries = latencies.len() as u64;
    let mean_us = latencies.iter().sum::<u64>() as f64 / deliveries.max(1) as f64;
    let p95_us = percentile(&latencies, 0.95) as f64;
    PhaseResult {
        phase: phase.to_string(),
        loop_threads,
        connections,
        rounds,
        setup_ms,
        deliveries,
        mean_us,
        p50_us: percentile(&latencies, 0.50) as f64,
        p95_us,
        p99_us: percentile(&latencies, 0.99) as f64,
        per_sub_p95_ns: p95_us * 1e3 / connections as f64,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() >= 3 && args[1] == "--serve" {
        serve(args[2].parse().expect("--serve LOOPS"));
        return;
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let connections = env_usize("REEF_WIRE_CONNS", 10_000);
    let loops = env_usize("REEF_WIRE_LOOPS", cores.max(4));
    let rounds = env_usize("REEF_WIRE_ROUNDS", 20);
    let baseline_conns = env_usize("REEF_WIRE_BASELINE", 1000).min(connections);

    // Equal sample counts: the baseline has 10x fewer subscribers, so give
    // it proportionally more rounds or its p95 is all sampling noise.
    let baseline_rounds = (rounds * connections / baseline_conns).min(rounds * 10);
    let baseline = run_phase("baseline", 1, baseline_conns, baseline_rounds);
    let sharded = run_phase("sharded", loops, connections, rounds);
    let ratio = sharded.per_sub_p95_ns / baseline.per_sub_p95_ns.max(f64::MIN_POSITIVE);

    let rows = vec![
        Row::new(
            format!("baseline p50/p95/p99 us ({baseline_conns} conns, 1 loop)"),
            "",
            format!(
                "{:.0}/{:.0}/{:.0}",
                baseline.p50_us, baseline.p95_us, baseline.p99_us
            ),
        ),
        Row::new(
            format!("sharded p50/p95/p99 us ({connections} conns, {loops} loops)"),
            "",
            format!(
                "{:.0}/{:.0}/{:.0}",
                sharded.p50_us, sharded.p95_us, sharded.p99_us
            ),
        ),
        Row::new(
            "baseline per-sub p95 ns",
            "",
            format!("{:.0}", baseline.per_sub_p95_ns),
        ),
        Row::new(
            "sharded per-sub p95 ns",
            "",
            format!("{:.0}", sharded.per_sub_p95_ns),
        ),
        Row::new(
            "per-sub p95 ratio (<=1 holds the line)",
            "",
            format!("{ratio:.3}"),
        ),
    ];
    print_table("wire connection scaling", &rows);
    if ratio > 1.0 {
        eprintln!("WARN: sharded per-subscriber p95 regressed {ratio:.3}x vs the 1-loop baseline");
    }

    let result = WireScaleResult {
        baseline,
        sharded,
        p95_per_sub_ratio: ratio,
    };
    if let Some(path) = emit_json("BENCH_wire", &result) {
        println!("result written to {}", path.display());
    }
}
