//! **E4** — Figure 1 vs Figure 2: centralized vs distributed Reef.
//!
//! §4 claims for the distributed design: storage and computation are
//! spread over the peers, crawl traffic disappears ("documents fetched by
//! the user … may be available from the browser's cache"), the attention
//! data never leaves the user's host, and recommendations stay comparable
//! (peer groups substitute for the central database's collaborative
//! signal). This binary runs both deployments on the identical workload
//! and compares traffic, server-resident state, and recommendation
//! output.

use reef_bench::{e1_setup, print_table, seed_from_env, write_json, Row};
use reef_core::{CentralizedReef, DistributedReef, ReefConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Side {
    subscribe_recs: u64,
    events_delivered: u64,
    attention_upload_bytes: u64,
    crawl_bytes: u64,
    recommendation_bytes: u64,
    gossip_bytes: u64,
    server_resident_clicks: u64,
}

#[derive(Serialize)]
struct E4Result {
    seed: u64,
    centralized: Side,
    distributed: Side,
}

fn main() {
    let seed = seed_from_env();
    let (universe, history) = e1_setup(seed);
    let config = ReefConfig::default();

    let mut central = CentralizedReef::new(&history.profiles, config, seed);
    let mut dist = DistributedReef::new(&history.profiles, config, seed);
    // Peers need a public reference corpus for term weighting (they have
    // no other users' data): a public sample of the Web.
    dist.seed_background(
        universe
            .pages()
            .iter()
            .filter(|p| p.content_type == "text/html")
            .step_by(17)
            .take(400)
            .map(|p| p.text.as_str()),
    );

    let mut c = Side {
        subscribe_recs: 0,
        events_delivered: 0,
        attention_upload_bytes: 0,
        crawl_bytes: 0,
        recommendation_bytes: 0,
        gossip_bytes: 0,
        server_resident_clicks: 0,
    };
    let mut d = Side {
        subscribe_recs: 0,
        events_delivered: 0,
        attention_upload_bytes: 0,
        crawl_bytes: 0,
        recommendation_bytes: 0,
        gossip_bytes: 0,
        server_resident_clicks: 0,
    };
    for day in 0..history.days {
        let rc = central.run_day(&universe, &history, day);
        c.subscribe_recs += rc.subscribe_recs;
        c.events_delivered += rc.events_delivered;
        let rd = dist.run_day(&universe, &history, day);
        d.subscribe_recs += rd.subscribe_recs;
        d.events_delivered += rd.events_delivered;
    }
    let tc = central.traffic();
    c.attention_upload_bytes = tc.attention_upload_bytes;
    c.crawl_bytes = tc.crawl_bytes;
    c.recommendation_bytes = tc.recommendation_bytes;
    c.server_resident_clicks = central.server_resident_clicks();
    let td = dist.traffic();
    d.gossip_bytes = td.gossip_bytes;
    d.server_resident_clicks = dist.server_resident_clicks();

    print_table(
        "E4: centralized (Fig 1) vs distributed (Fig 2) on the same 10-week workload",
        &[
            Row::new(
                "feed recommendations",
                format!("central {}", c.subscribe_recs),
                format!("distributed {}", d.subscribe_recs),
            ),
            Row::new(
                "events delivered",
                format!("central {}", c.events_delivered),
                format!("distributed {}", d.events_delivered),
            ),
            Row::new(
                "attention upload bytes",
                format!("central {}", c.attention_upload_bytes),
                "distributed 0 (stays on host)",
            ),
            Row::new(
                "server crawl bytes",
                format!("central {}", c.crawl_bytes),
                "distributed 0 (browser cache)",
            ),
            Row::new(
                "recommendation bytes",
                format!("central {}", c.recommendation_bytes),
                "distributed 0 (local)",
            ),
            Row::new(
                "gossip bytes (peer groups)",
                "central 0",
                format!("distributed {}", d.gossip_bytes),
            ),
            Row::new(
                "attention held server-side",
                format!("central {} clicks", c.server_resident_clicks),
                format!("distributed {} clicks", d.server_resident_clicks),
            ),
        ],
    );

    let total_c = c.attention_upload_bytes + c.crawl_bytes + c.recommendation_bytes;
    let total_d = d.gossip_bytes;
    println!(
        "\nsubscription-machinery traffic: centralized {} bytes vs distributed {} bytes ({}x reduction)",
        total_c,
        total_d,
        if total_d > 0 { total_c / total_d.max(1) } else { 0 }
    );
    println!(
        "recommendation parity: distributed delivers {:.0}% of the centralized recommendation count",
        100.0 * d.subscribe_recs as f64 / c.subscribe_recs.max(1) as f64
    );

    let result = E4Result {
        seed,
        centralized: c,
        distributed: d,
    };
    if let Some(path) = write_json("e4_central_vs_distributed", &result) {
        println!("\nresult written to {}", path.display());
    }
}
