//! **E5** — automatic subscriptions over live daemons: the §4
//! centralized-vs-distributed comparison re-run against real `reefd`
//! processes with the derive→install→deliver loop running *server-side*.
//!
//! Five users' ten-week click histories (the §3.2 workload) are uploaded
//! over real sockets; each user enrolls with `AutoSubscribe` and the
//! daemon derives and installs broker subscriptions on their behalf.
//! The centralized deployment (Fig 1) holds every user's attention data
//! on one daemon; the distributed deployment (Fig 2) splits the users
//! across a 2-daemon federation, so derived interests must advertise
//! over the peer link before a publish at the hub can reach them.
//!
//! Measured: derive latency (the `AutoSubscribe` round trip over a full
//! uploaded history), refresh-cycle latency (upload after enrollment →
//! unsolicited `FeedChanged` install notice), delivery completeness to
//! auto-derived subscriptions, attention locality, and peer-link bytes.

use reef_attention::{Click, ClickBatch};
use reef_bench::{e1_setup, emit_json, print_table, seed_from_env, Row};
use reef_pubsub::{Event, TOPIC_ATTR};
use reef_simweb::UserId;
use reef_wire::{AutosubOptions, BrokerServer, Client};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(10);
const REFRESH: Duration = Duration::from_millis(25);
const UPLOAD_CHUNK: usize = 2000;
/// A user id far outside the simulated population, used to probe the
/// refresh cycle with a clean (empty) click history.
const PROBE_USER: u32 = 990_001;

#[derive(Serialize)]
struct Deployment {
    daemons: usize,
    users: usize,
    clicks_uploaded: u64,
    clicks_at_hub: u64,
    feeds_derived: usize,
    derive_ms_mean: f64,
    derive_ms_max: f64,
    refresh_cycle_ms: f64,
    deliveries_expected: u64,
    deliveries: u64,
    peer_link_bytes: u64,
    last_refresh_us_max: u64,
}

#[derive(Serialize)]
struct E5Result {
    seed: u64,
    centralized: Deployment,
    distributed: Deployment,
}

/// Poll `probe` until it returns true or the deadline passes.
fn wait_for(what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + WAIT;
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The topic attribute value of a derived filter, if it has one.
fn feed_of(filter: &reef_pubsub::Filter) -> Option<String> {
    filter
        .eq_attrs()
        .find(|(attr, _)| *attr == TOPIC_ATTR)
        .and_then(|(_, value)| value.as_str().map(str::to_owned))
}

fn run_deployment(daemon_count: usize, per_user: &BTreeMap<u32, Vec<Click>>) -> Deployment {
    let hub = BrokerServer::builder()
        .name("autosub-hub")
        .autosub(AutosubOptions::default().refresh_interval(REFRESH))
        .bind("127.0.0.1:0")
        .expect("bind hub");
    let spokes: Vec<BrokerServer> = (1..daemon_count)
        .map(|i| {
            BrokerServer::builder()
                .name(format!("autosub-spoke-{i}"))
                .autosub(AutosubOptions::default().refresh_interval(REFRESH))
                .peer(hub.local_addr().to_string())
                .bind("127.0.0.1:0")
                .expect("bind spoke")
        })
        .collect();
    let servers: Vec<&BrokerServer> = std::iter::once(&hub).chain(spokes.iter()).collect();
    if daemon_count > 1 {
        wait_for("peer links to register", || {
            hub.federation_stats().peers as usize == daemon_count - 1
        });
    }

    // Upload each user's history to their home daemon (round-robin) and
    // enroll; the AutoSubscribe round trip IS the derive latency, since
    // the daemon observes the full history before replying.
    let mut readers = Vec::new();
    let mut derive_ms = Vec::new();
    let mut feeds_of_user: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    let mut clicks_uploaded = 0u64;
    let mut clicks_at_hub = 0u64;
    for (slot, (&user, clicks)) in per_user.iter().enumerate() {
        let home = servers[slot % daemon_count];
        let client =
            Client::connect_as(home.local_addr(), &format!("reader-{user}")).expect("connect");
        for chunk in clicks.chunks(UPLOAD_CHUNK) {
            client
                .upload_clicks(ClickBatch {
                    user: UserId(user),
                    clicks: chunk.to_vec(),
                })
                .expect("upload");
        }
        clicks_uploaded += clicks.len() as u64;
        if slot % daemon_count == 0 {
            clicks_at_hub += clicks.len() as u64;
        }
        let started = Instant::now();
        let receipt = client
            .auto_subscribe(UserId(user), None)
            .expect("auto-subscribe");
        derive_ms.push(started.elapsed().as_secs_f64() * 1e3);
        feeds_of_user.insert(
            user,
            receipt
                .entries
                .iter()
                .filter_map(|entry| feed_of(&entry.filter))
                .collect(),
        );
        readers.push(client);
    }

    // Refresh-cycle probe: a fresh user enrolls with an empty history,
    // then uploads a burst of clicks; the elapsed time until the daemon's
    // unsolicited FeedChanged install notice is one refresh cycle.
    let probe = Client::connect_as(hub.local_addr(), "probe").expect("connect probe");
    let receipt = probe
        .auto_subscribe(UserId(PROBE_USER), None)
        .expect("probe enroll");
    assert!(receipt.entries.is_empty(), "probe starts with no history");
    let burst: Vec<Click> = (0..5)
        .map(|i| Click {
            user: UserId(PROBE_USER),
            day: 0,
            tick: i,
            url: format!("http://probe.example/article-{i}"),
            referrer: None,
        })
        .collect();
    let started = Instant::now();
    probe
        .upload_clicks(ClickBatch {
            user: UserId(PROBE_USER),
            clicks: burst,
        })
        .expect("probe upload");
    let change = probe
        .recv_feed_change(WAIT)
        .expect("refresh installs the probe interest");
    let refresh_cycle_ms = started.elapsed().as_secs_f64() * 1e3;
    assert!(!change.installed.is_empty(), "probe interest installed");

    // Interests derived behind a spoke must be advertised at the hub
    // before a publish there can route across the peer link.
    let remote_feeds: BTreeSet<&String> = per_user
        .keys()
        .enumerate()
        .filter(|(slot, _)| slot % daemon_count != 0)
        .filter_map(|(_, user)| feeds_of_user.get(user))
        .flatten()
        .collect();
    wait_for("remote interests to advertise at the hub", || {
        hub.federation_stats().routing_entries as usize >= remote_feeds.len()
    });

    // Publish one fresh item per derived feed at the hub and wait for
    // every enrolled reader's copy to land, wherever their daemon is.
    let publisher = Client::connect_as(hub.local_addr(), "publisher").expect("connect publisher");
    let all_feeds: BTreeSet<&String> = feeds_of_user.values().flatten().collect();
    let deliveries_expected: u64 = feeds_of_user.values().map(|f| f.len() as u64).sum();
    let before: u64 = servers.iter().map(|s| s.stats().deliveries).sum();
    for feed in &all_feeds {
        publisher
            .publish(Event::topical(feed.as_str(), "fresh item"))
            .expect("publish");
    }
    let deadline = Instant::now() + WAIT;
    let mut deliveries = 0u64;
    while Instant::now() < deadline {
        deliveries = servers.iter().map(|s| s.stats().deliveries).sum::<u64>() - before;
        if deliveries >= deliveries_expected {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    let peer_link_bytes = {
        let f = hub.federation_stats();
        f.json.bytes_in + f.json.bytes_out + f.binary.bytes_in + f.binary.bytes_out
    };
    let last_refresh_us_max = servers
        .iter()
        .map(|s| s.stats().autosub_last_refresh_us)
        .max()
        .unwrap_or(0);

    let report = Deployment {
        daemons: daemon_count,
        users: per_user.len(),
        clicks_uploaded,
        clicks_at_hub,
        feeds_derived: all_feeds.len(),
        derive_ms_mean: derive_ms.iter().sum::<f64>() / derive_ms.len().max(1) as f64,
        derive_ms_max: derive_ms.iter().cloned().fold(0.0, f64::max),
        refresh_cycle_ms,
        deliveries_expected,
        deliveries,
        peer_link_bytes,
        last_refresh_us_max,
    };

    for client in readers {
        client.close().expect("close reader");
    }
    probe.close().expect("close probe");
    publisher.close().expect("close publisher");
    for spoke in spokes {
        spoke.shutdown();
    }
    hub.shutdown();
    report
}

fn main() {
    let seed = seed_from_env();
    let (_universe, history) = e1_setup(seed);
    let mut per_user: BTreeMap<u32, Vec<Click>> = BTreeMap::new();
    for request in &history.requests {
        per_user
            .entry(request.user.0)
            .or_default()
            .push(Click::from_request(request));
    }

    let centralized = run_deployment(1, &per_user);
    let distributed = run_deployment(2, &per_user);

    print_table(
        "E5: server-side auto-subscription, centralized (Fig 1) vs 2-daemon federation (Fig 2)",
        &[
            Row::new(
                "attention held at the hub",
                format!("central {} clicks", centralized.clicks_at_hub),
                format!("distributed {} clicks", distributed.clicks_at_hub),
            ),
            Row::new(
                "feeds auto-derived",
                format!("central {}", centralized.feeds_derived),
                format!("distributed {}", distributed.feeds_derived),
            ),
            Row::new(
                "derive latency (mean)",
                format!("central {:.2} ms", centralized.derive_ms_mean),
                format!("distributed {:.2} ms", distributed.derive_ms_mean),
            ),
            Row::new(
                "derive latency (max)",
                format!("central {:.2} ms", centralized.derive_ms_max),
                format!("distributed {:.2} ms", distributed.derive_ms_max),
            ),
            Row::new(
                "refresh cycle",
                format!("central {:.1} ms", centralized.refresh_cycle_ms),
                format!("distributed {:.1} ms", distributed.refresh_cycle_ms),
            ),
            Row::new(
                "auto-sub deliveries",
                format!(
                    "central {}/{}",
                    centralized.deliveries, centralized.deliveries_expected
                ),
                format!(
                    "distributed {}/{}",
                    distributed.deliveries, distributed.deliveries_expected
                ),
            ),
            Row::new(
                "peer-link bytes",
                format!("central {}", centralized.peer_link_bytes),
                format!("distributed {}", distributed.peer_link_bytes),
            ),
        ],
    );
    println!(
        "\nattention locality: the federation keeps {:.0}% of clicks off the hub; \
         deliveries to auto-derived subscriptions stay complete ({}/{}).",
        100.0 * (1.0 - distributed.clicks_at_hub as f64 / distributed.clicks_uploaded as f64),
        distributed.deliveries,
        distributed.deliveries_expected,
    );

    let result = E5Result {
        seed,
        centralized,
        distributed,
    };
    if let Some(path) = emit_json("BENCH_autosub", &result) {
        println!("result written to {}", path.display());
    }
}
