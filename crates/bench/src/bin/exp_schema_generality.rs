//! **E5** — §2.1 generality: one attention parser, any well-defined
//! publish-subscribe interface.
//!
//! "We conjecture that a system can be built that is general enough for
//! use with any well-defined publish-subscribe interface." The attention
//! parser is schema-driven; this experiment feeds one synthetic attention
//! stream (with embedded stock symbols, feed URLs, and city names) to
//! parsers for three different interfaces and verifies that each extracts
//! exactly the name-value pairs valid for *its* schema, then places the
//! resulting subscriptions and routes live events through them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reef_attention::AttentionParser;
use reef_bench::{print_table, seed_from_env, write_json, Row};
use reef_pubsub::{
    feed_events_schema, stock_quote_schema, AttrSpec, Broker, Event, Filter, Op, Schema, ValueType,
};
use serde::Serialize;

#[derive(Serialize)]
struct E5Result {
    seed: u64,
    stream_tokens: usize,
    stock_pairs: usize,
    feed_pairs: usize,
    weather_pairs: usize,
    stock_events_delivered: usize,
    weather_events_delivered: usize,
}

fn weather_schema() -> Schema {
    Schema::builder("weather-alerts")
        .attr(
            "city",
            AttrSpec::of(ValueType::Str)
                .required()
                .with_domain(["TROMSO", "OSLO", "BERGEN"]),
        )
        .attr("temp_c", AttrSpec::of(ValueType::Float))
        .build()
}

fn main() {
    let seed = seed_from_env();
    let mut rng = StdRng::seed_from_u64(seed);

    // A browsing session transcript: free text mentioning stock symbols
    // and cities, plus clicked URLs, some of which are feeds.
    let filler = [
        "market", "report", "today", "shares", "weather", "flight", "news",
    ];
    let symbols = ["ACME", "GLOBEX", "INITECH"];
    let cities = ["tromso", "oslo", "unknownville"];
    let mut text = String::new();
    for i in 0..600 {
        if i > 0 {
            text.push(' ');
        }
        match rng.gen_range(0..10) {
            0 => text.push_str(symbols[rng.gen_range(0..symbols.len())]),
            1 => text.push_str(cities[rng.gen_range(0..cities.len())]),
            _ => text.push_str(filler[rng.gen_range(0..filler.len())]),
        }
    }
    let urls = [
        "http://finance.example/quotes.html",
        "http://news.example/feed0.rss",
        "http://blog.example/feed1.atom",
        "http://weather.example/forecast.html",
    ];

    // Three parsers, three interfaces, one stream.
    let stock_parser = AttentionParser::new(stock_quote_schema(["ACME", "GLOBEX"]));
    let feed_parser = AttentionParser::new(feed_events_schema());
    let weather_parser = AttentionParser::new(weather_schema());

    let stock_pairs = stock_parser.parse_text(&text);
    let weather_pairs = weather_parser.parse_text(&text);
    let feed_pairs: Vec<_> = urls.iter().flat_map(|u| feed_parser.parse_url(u)).collect();

    // Subscriptions from the extracted pairs, placed on schema-validating
    // brokers, with live events to prove the loop closes.
    let stock_broker = Broker::builder()
        .schema(stock_quote_schema(["ACME", "GLOBEX"]))
        .build();
    let (stock_sub, stock_inbox) = stock_broker.register();
    let mut stock_filters = 0usize;
    let mut seen = std::collections::BTreeSet::new();
    for pair in &stock_pairs {
        if seen.insert(pair.value.to_string()) {
            stock_broker
                .subscribe(
                    stock_sub,
                    Filter::new().and(pair.attr.clone(), Op::Eq, pair.value.clone()),
                )
                .expect("parser output is schema-valid");
            stock_filters += 1;
        }
    }
    for (symbol, price) in [("ACME", 12.5), ("GLOBEX", 99.1), ("INITECH", 1.0)] {
        // INITECH is outside the schema domain: the broker must reject it.
        let ev = Event::builder()
            .attr("symbol", symbol)
            .attr("price", price)
            .build();
        let _ = stock_broker.publish(ev);
    }

    let weather_broker = Broker::builder().schema(weather_schema()).build();
    let (wsub, weather_inbox) = weather_broker.register();
    for pair in &weather_pairs {
        let _ = weather_broker.subscribe(
            wsub,
            Filter::new().and(pair.attr.clone(), Op::Eq, pair.value.clone()),
        );
    }
    weather_broker
        .publish(
            Event::builder()
                .attr("city", "TROMSO")
                .attr("temp_c", -12.0)
                .build(),
        )
        .expect("valid event");

    let stock_delivered = stock_inbox.drain().len();
    let weather_delivered = weather_inbox.drain().len();

    print_table(
        "E5: one attention stream, three publish-subscribe interfaces (§2.1)",
        &[
            Row::new(
                "stock pairs extracted (ACME/GLOBEX only)",
                "domain-valid only",
                stock_pairs.len(),
            ),
            Row::new("distinct stock subscriptions placed", "", stock_filters),
            Row::new("feed-URL pairs extracted", "2 of 4 urls", feed_pairs.len()),
            Row::new(
                "weather pairs extracted (TROMSO/OSLO)",
                "domain-valid only",
                weather_pairs.len(),
            ),
            Row::new("stock events delivered", "", stock_delivered),
            Row::new("weather events delivered", "", weather_delivered),
        ],
    );
    assert!(stock_pairs.iter().all(|p| {
        let s = p.value.as_str().unwrap_or("");
        s == "ACME" || s == "GLOBEX"
    }));
    assert_eq!(feed_pairs.len(), 2, "exactly the two feed-shaped urls");
    println!("\nall extracted pairs validated against their schemas; invalid events rejected");

    let result = E5Result {
        seed,
        stream_tokens: 600,
        stock_pairs: stock_pairs.len(),
        feed_pairs: feed_pairs.len(),
        weather_pairs: weather_pairs.len(),
        stock_events_delivered: stock_delivered,
        weather_events_delivered: weather_delivered,
    };
    if let Some(path) = write_json("e5_schema_generality", &result) {
        println!("result written to {}", path.display());
    }
}
