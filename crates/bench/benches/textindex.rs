//! **B4** — IR pipeline: stemming, tokenization+indexing, Offer-Weight
//! term selection, and BM25 ranking of the 500-story archive.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use reef_simweb::{TopicId, TopicModel, TopicModelConfig};
use reef_textindex::{
    porter_stem, rank_all, select_terms, Bm25Params, Corpus, OfferWeightMode, Query, Tokenizer,
};
use std::hint::black_box;

fn corpora() -> (TopicModel, Vec<String>, Vec<String>) {
    let model = TopicModel::generate(TopicModelConfig::default(), 11);
    let mut rng = StdRng::seed_from_u64(11);
    let history: Vec<String> = (0..400)
        .map(|i| model.sample_text(&mut rng, &[(TopicId((i % 3) as u32), 1.0)], 120))
        .collect();
    let background: Vec<String> = (0..400)
        .map(|i| model.sample_text(&mut rng, &[(TopicId((i % 20) as u32), 0.6)], 120))
        .collect();
    (model, history, background)
}

fn bench_stemmer(c: &mut Criterion) {
    let words = [
        "subscriptions",
        "relational",
        "publishing",
        "recommendation",
        "effectiveness",
        "notifications",
        "analyzing",
        "attention",
        "architecture",
        "collaborative",
    ];
    c.bench_function("porter_stem_10_words", |b| {
        b.iter(|| {
            for w in &words {
                black_box(porter_stem(w));
            }
        })
    });
}

fn bench_tokenize_index(c: &mut Criterion) {
    let (_, history, _) = corpora();
    let tokenizer = Tokenizer::new();
    c.bench_function("index_400_docs", |b| {
        b.iter(|| {
            let mut corpus = Corpus::new();
            for doc in &history {
                corpus.add_text(&tokenizer, doc);
            }
            black_box(corpus.doc_count())
        })
    });
}

fn bench_select_terms(c: &mut Criterion) {
    let (_, history, background) = corpora();
    let tokenizer = Tokenizer::new();
    let mut h = Corpus::new();
    for doc in &history {
        h.add_text(&tokenizer, doc);
    }
    let mut bg = Corpus::new();
    for doc in &background {
        bg.add_text(&tokenizer, doc);
    }
    c.bench_function("offer_weight_top30", |b| {
        b.iter(|| black_box(select_terms(&h, &bg, 30, OfferWeightMode::TfIntegrated)))
    });
}

fn bench_bm25_rank(c: &mut Criterion) {
    let (model, _, _) = corpora();
    let tokenizer = Tokenizer::new();
    let mut rng = StdRng::seed_from_u64(13);
    let mut stories = Corpus::new();
    for i in 0..500 {
        let text = model.sample_text(&mut rng, &[(TopicId((i % 20) as u32), 1.0)], 90);
        stories.add_text(&tokenizer, &text);
    }
    let terms: Vec<String> = model
        .topic(TopicId(0))
        .expect("topic exists")
        .terms()
        .iter()
        .take(30)
        .map(|t| porter_stem(t))
        .collect();
    let query = Query::from_strs(&stories, terms.iter().map(String::as_str));
    c.bench_function("bm25_rank_500_stories_30_terms", |b| {
        b.iter(|| black_box(rank_all(&stories, Bm25Params::default(), &query)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_stemmer, bench_tokenize_index, bench_select_terms, bench_bm25_rank
}
criterion_main!(benches);
