//! **B1** — matching-engine throughput: naive scan vs counting index.
//!
//! The standard content-based pub/sub scalability result (cf. Gryphon,
//! Siena): indexed matching stays near-flat as subscriptions grow while
//! the naive scan degrades linearly. The crossover justifies the
//! `IndexMatcher` default in the broker.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reef_pubsub::{Event, Filter, IndexMatcher, MatchEngine, NaiveMatcher, Op, SubscriptionId};
use std::hint::black_box;

const ATTRS: [&str; 8] = [
    "alpha", "beta", "gamma", "delta", "eps", "zeta", "eta", "theta",
];

fn random_filter(rng: &mut StdRng) -> Filter {
    let mut f = Filter::new();
    for _ in 0..rng.gen_range(1..=3) {
        let attr = ATTRS[rng.gen_range(0..ATTRS.len())];
        let val = rng.gen_range(0..50i64);
        let op = match rng.gen_range(0..4) {
            0 => Op::Eq,
            1 => Op::Lt,
            2 => Op::Gt,
            _ => Op::Ne,
        };
        f = f.and(attr, op, val);
    }
    f
}

fn random_event(rng: &mut StdRng) -> Event {
    let mut e = Event::new();
    for _ in 0..rng.gen_range(2..=5) {
        e.set(
            ATTRS[rng.gen_range(0..ATTRS.len())],
            rng.gen_range(0..50i64),
        );
    }
    e
}

fn bench_matchers(c: &mut Criterion) {
    let mut group = c.benchmark_group("match_throughput");
    for &n_subs in &[100usize, 1_000, 10_000] {
        let mut rng = StdRng::seed_from_u64(42);
        let filters: Vec<Filter> = (0..n_subs).map(|_| random_filter(&mut rng)).collect();
        let events: Vec<Event> = (0..64).map(|_| random_event(&mut rng)).collect();

        let mut naive = NaiveMatcher::new();
        let mut index = IndexMatcher::new();
        for (i, f) in filters.iter().enumerate() {
            naive.insert(SubscriptionId(i as u64), f.clone());
            index.insert(SubscriptionId(i as u64), f.clone());
        }

        group.bench_with_input(BenchmarkId::new("naive", n_subs), &n_subs, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % events.len();
                black_box(naive.matches(&events[i]))
            })
        });
        group.bench_with_input(BenchmarkId::new("index", n_subs), &n_subs, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % events.len();
                black_box(index.matches(&events[i]))
            })
        });
    }
    group.finish();
}

fn bench_insert_remove(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let filters: Vec<Filter> = (0..1000).map(|_| random_filter(&mut rng)).collect();
    c.bench_function("index_insert_remove_1k", |b| {
        b.iter(|| {
            let mut m = IndexMatcher::new();
            for (i, f) in filters.iter().enumerate() {
                m.insert(SubscriptionId(i as u64), f.clone());
            }
            for i in 0..filters.len() {
                m.remove(SubscriptionId(i as u64));
            }
            black_box(m.len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matchers, bench_insert_remove
}
criterion_main!(benches);
