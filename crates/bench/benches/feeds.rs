//! **B3** — feed substrate: XML parse throughput per dialect and proxy
//! poll cycles with dedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reef_feeds::{parse_feed, write_feed, Feed, FeedEventsProxy, FeedFormat, FeedItem};
use reef_pubsub::Broker;
use std::hint::black_box;

fn sample_feed(items: usize) -> Feed {
    Feed {
        title: "Throughput Feed".to_owned(),
        link: "http://bench.example/".to_owned(),
        description: "benchmark & <escaping> fodder".to_owned(),
        items: (0..items)
            .map(|i| FeedItem {
                guid: format!("guid-{i}"),
                title: format!("Story {i} with some & entities <here>"),
                link: format!("http://bench.example/story/{i}"),
                description: "a body of a plausible length for a feed item, \
                              with enough words to be representative of news"
                    .to_owned(),
                published_day: Some(i as u32),
            })
            .collect(),
    }
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("feed_parse");
    for format in [FeedFormat::Rss2, FeedFormat::Atom, FeedFormat::Rdf] {
        let xml = write_feed(&sample_feed(30), format);
        group.bench_with_input(
            BenchmarkId::new("parse_30_items", format.to_string()),
            &xml,
            |b, xml| b.iter(|| black_box(parse_feed(xml).expect("well-formed"))),
        );
    }
    group.finish();
}

fn bench_write(c: &mut Criterion) {
    let feed = sample_feed(30);
    c.bench_function("feed_write_rss2_30_items", |b| {
        b.iter(|| black_box(write_feed(&feed, FeedFormat::Rss2)))
    });
}

fn bench_proxy_poll(c: &mut Criterion) {
    let mut group = c.benchmark_group("proxy_poll");
    for &n_feeds in &[10usize, 100] {
        group.bench_with_input(BenchmarkId::new("poll_all", n_feeds), &n_feeds, |b, &n| {
            let broker = Broker::new();
            let mut proxy = FeedEventsProxy::new();
            for i in 0..n {
                proxy.register(&format!("http://bench.example/f{i}.rss"));
            }
            let mut day = 0u32;
            b.iter(|| {
                day += 1;
                let fetcher = move |url: &str, d: u32| {
                    let mut feed = sample_feed(0);
                    // One new item per feed per day: dedup does real work.
                    feed.items.push(FeedItem {
                        guid: format!("{url}-d{d}"),
                        title: "fresh".to_owned(),
                        link: url.to_owned(),
                        description: "new item".to_owned(),
                        published_day: Some(d),
                    });
                    Some(write_feed(&feed, FeedFormat::Rss2))
                };
                black_box(proxy.poll_all(&fetcher, &broker, day))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_parse, bench_write, bench_proxy_poll
}
criterion_main!(benches);
