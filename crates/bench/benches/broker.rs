//! **B2** — broker publish/deliver throughput and overlay routing, with
//! the covering ablation, plus the sans-io `BrokerNode` core in
//! isolation (the per-message routing cost a transport driver pays) and
//! the wire codecs (JSON v1 vs binary v2 encode/decode throughput and
//! bytes per frame on publish and click-upload payloads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reef_pubsub::net::NodeId;
use reef_pubsub::{
    Broker, BrokerNode, ClientId, Event, EventId, Filter, GlobalSubId, Overlay, PeerMsg,
    PublishedEvent,
};
use std::hint::black_box;

fn bench_local_broker(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker_publish");
    for &n_subs in &[100usize, 1_000] {
        let broker = Broker::new();
        let (id, handle) = broker.register();
        for i in 0..n_subs {
            broker
                .subscribe(id, Filter::topic(&format!("t{i}")))
                .expect("subscribe");
        }
        group.bench_with_input(BenchmarkId::new("topical", n_subs), &n_subs, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let ev = Event::topical(&format!("t{}", i % n_subs as u64), "body");
                black_box(broker.publish(ev).expect("publish"));
                handle.drain();
            })
        });
    }
    group.finish();
}

fn build_overlay(covering: bool, brokers: usize, subs_per_client: usize) -> Overlay {
    let mut ov = Overlay::new(covering);
    let ids: Vec<_> = (0..brokers).map(|_| ov.add_broker()).collect();
    for w in ids.windows(2) {
        ov.link(w[0], w[1], 1).expect("tree link");
    }
    for (bi, broker) in ids.iter().enumerate() {
        let client = ov.attach_client(*broker).expect("attach");
        for s in 0..subs_per_client {
            // Half the filters are covered by a wider one to exercise the
            // covering logic.
            let filter = if s % 2 == 0 {
                Filter::new().and("x", reef_pubsub::Op::Gt, (s / 2) as i64)
            } else {
                Filter::new()
                    .and("x", reef_pubsub::Op::Gt, (s / 2) as i64)
                    .and("y", reef_pubsub::Op::Eq, bi as i64)
            };
            ov.subscribe(client, filter).expect("subscribe");
        }
    }
    ov.run_until_idle();
    ov
}

fn bench_overlay(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay_routing");
    for covering in [false, true] {
        let label = if covering { "covering" } else { "flooding" };
        group.bench_function(BenchmarkId::new("publish_run", label), |b| {
            let mut ov = build_overlay(covering, 8, 32);
            let publisher = ov.attach_client(reef_pubsub::NodeId(0)).expect("attach");
            let mut i = 0i64;
            b.iter(|| {
                i += 1;
                ov.publish(
                    publisher,
                    Event::builder().attr("x", i % 40).attr("y", i % 8).build(),
                )
                .expect("publish");
                black_box(ov.run_until_idle())
            })
        });
    }
    group.finish();
}

fn bench_overlay_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay_subscription_propagation");
    for covering in [false, true] {
        let label = if covering { "covering" } else { "flooding" };
        group.bench_function(BenchmarkId::new("build", label), |b| {
            b.iter(|| {
                let ov = build_overlay(covering, 8, 32);
                black_box((ov.routing_entries(), ov.advertisement_count()))
            })
        });
    }
    group.finish();
}

/// The sans-io core alone: one `BrokerNode` with two neighbors and a
/// populated routing table, fed `EventFwd` messages by hand. This is the
/// pure routing cost per message — what both `SimTransport` and the TCP
/// federation pay before any I/O.
fn bench_broker_node_handle(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker_node_handle");
    for &n_subs in &[32usize, 256] {
        let (upstream, downstream) = (NodeId(1), NodeId(2));
        let mut node = BrokerNode::new(true);
        node.add_neighbor(upstream);
        node.add_neighbor(downstream);
        for s in 0..n_subs {
            // Half local, half advertised by the downstream neighbor.
            let filter = Filter::new().and("x", reef_pubsub::Op::Gt, (s % 40) as i64);
            if s % 2 == 0 {
                node.subscribe_local(GlobalSubId(s as u64), ClientId(s as u64), filter);
            } else {
                node.handle(
                    downstream,
                    PeerMsg::SubFwd {
                        sub: GlobalSubId(s as u64),
                        filter,
                    },
                );
            }
        }
        group.bench_with_input(BenchmarkId::new("event_fwd", n_subs), &n_subs, |b, _| {
            let mut i = 0i64;
            b.iter(|| {
                i += 1;
                let msg = PeerMsg::EventFwd {
                    event: PublishedEvent {
                        id: EventId(i as u64),
                        published_at: i as u64,
                        event: Event::builder().attr("x", i % 45).build(),
                    },
                    hops: 1,
                };
                black_box(node.handle(upstream, msg))
            })
        });
    }
    group.finish();
}

/// The wire codecs head to head: encode and decode throughput for the
/// two frame payloads that dominate real traffic — publishes (the
/// high-volume broker path) and click uploads (the paper's §3.1
/// extension → server path) — plus a bytes-per-frame report, which is
/// the number that caps broker-to-broker link scale.
fn bench_wire_codecs(c: &mut Criterion) {
    use reef_wire::{ClientFrame, CodecKind, Request};

    let publish = ClientFrame {
        corr: 7,
        request: Request::Publish {
            event: Event::builder()
                .attr("topic", "http://feed.example/markets.rss")
                .attr("body", "ACME beats estimates; shares jump in late trading")
                .attr("price", 127.42)
                .attr("volume", 1_250_000)
                .attr("halted", false)
                .build(),
        },
    };
    let upload = ClientFrame {
        corr: 8,
        request: Request::UploadClicks {
            batch: reef_attention::ClickBatch {
                user: reef_simweb::UserId(42),
                clicks: (0..20)
                    .map(|i| reef_attention::Click {
                        user: reef_simweb::UserId(42),
                        day: 3,
                        tick: 1_000 + i,
                        url: format!("http://news.example/story-{i}.html"),
                        referrer: (i % 2 == 0).then(|| "http://portal.example/".to_owned()),
                    })
                    .collect(),
            },
        },
    };

    let mut group = c.benchmark_group("wire_codec");
    for (payload_name, frame) in [("publish", &publish), ("click_upload", &upload)] {
        for kind in [CodecKind::Json, CodecKind::Binary] {
            let codec = kind.codec();
            let encoded = codec.encode_client(frame).expect("encode");
            // The headline number: wire bytes per frame, per codec.
            eprintln!(
                "wire_codec/{payload_name}/{}: {} bytes/frame",
                kind.name(),
                encoded.wire_len()
            );
            group.bench_with_input(
                BenchmarkId::new(format!("encode_{payload_name}"), kind.name()),
                &kind,
                |b, _| b.iter(|| black_box(codec.encode_client(black_box(frame)).expect("encode"))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("decode_{payload_name}"), kind.name()),
                &kind,
                |b, _| {
                    b.iter(|| black_box(codec.decode_client(black_box(&encoded)).expect("decode")))
                },
            );
        }
    }

    // Click-upload compression ablation: the v2 codec delta/prefix-codes
    // click batches; measure it against the pre-compression v2 layout
    // (and assert the win, which is this bench's acceptance number).
    let plain_codec = reef_wire::codec::BinaryCodec;
    let compressed = CodecKind::Binary
        .codec()
        .encode_client(&upload)
        .expect("encode");
    let plain = plain_codec
        .encode_client_uncompressed(&upload)
        .expect("encode plain");
    eprintln!(
        "wire_codec/click_upload/binary-plain: {} bytes/frame (compressed v2 {} = {:.0}%)",
        plain.wire_len(),
        compressed.wire_len(),
        100.0 * compressed.wire_len() as f64 / plain.wire_len() as f64,
    );
    assert!(
        compressed.wire_len() < plain.wire_len(),
        "compressed v2 click upload ({}) must beat plain v2 ({})",
        compressed.wire_len(),
        plain.wire_len()
    );
    group.bench_function(
        BenchmarkId::new("encode_click_upload", "binary-plain"),
        |b| {
            b.iter(|| {
                black_box(
                    plain_codec
                        .encode_client_uncompressed(black_box(&upload))
                        .expect("encode"),
                )
            })
        },
    );
    group.bench_function(
        BenchmarkId::new("decode_click_upload", "binary-plain"),
        |b| {
            b.iter(|| {
                black_box(
                    plain_codec
                        .decode_client_uncompressed(black_box(&plain))
                        .expect("decode"),
                )
            })
        },
    );
    group.finish();
}

/// The durable click store's disk path: WAL append cost per upload batch
/// (what every acknowledged upload now pays) and full recovery cost
/// (snapshot + segment replay at daemon startup).
fn bench_click_wal(c: &mut Criterion) {
    use reef_attention::{Click, ClickBatch, DurableClickStore, PersistConfig};
    use reef_simweb::UserId;

    let dir = std::env::temp_dir().join(format!("reef-bench-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = PersistConfig {
        dir: dir.clone(),
        segment_bytes: 1 << 20,
        snapshot_every: 256,
    };
    let batch = |base: u64| ClickBatch {
        user: UserId(7),
        clicks: (0..20)
            .map(|i| Click {
                user: UserId(7),
                day: (base / 100) as u32,
                tick: base + i,
                url: format!("http://news.example/story-{}.html", base + i),
                referrer: (i % 2 == 0).then(|| "http://portal.example/".to_owned()),
            })
            .collect(),
    };

    let mut group = c.benchmark_group("click_wal");
    group.bench_function("append_20_click_batch", |b| {
        let mut store = DurableClickStore::open(cfg.clone()).expect("open");
        let mut base = 0u64;
        b.iter(|| {
            base += 100;
            black_box(store.ingest_upload(batch(base)).expect("ingest"));
        })
    });

    // Recovery: replay a store of 200 batches (snapshots disabled so the
    // whole log replays — the worst case).
    let recover_dir = dir.join("recover");
    let recover_cfg = PersistConfig {
        dir: recover_dir,
        segment_bytes: 1 << 20,
        snapshot_every: 0,
    };
    {
        let mut store = DurableClickStore::open(recover_cfg.clone()).expect("open");
        for i in 0..200u64 {
            store.ingest_upload(batch(i * 100)).expect("ingest");
        }
    }
    group.bench_function("recover_200_batches", |b| {
        b.iter(|| {
            let store = DurableClickStore::open(recover_cfg.clone()).expect("recover");
            black_box(store.len())
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Connection scaling: one daemon holding many idle subscribers, measured
/// as the wall-clock cost of one publish fanning out to every one of
/// them. Run for both server cores — the threaded transport pays 2 OS
/// threads per connection (the reason it caps out at hundreds of
/// subscribers), the epoll transport runs every socket on one readiness
/// loop. Subscribers are raw sockets (handshake + subscribe, then just
/// read), so the daemon under test is the only thread-heavy side.
fn bench_wire_connections(c: &mut Criterion) {
    use reef_wire::{BrokerServer, Client, ClientFrame, CodecKind, Frame, Request, TransportKind};
    use std::io::BufReader;
    use std::net::TcpStream;
    use std::time::Instant;

    const SUBSCRIBERS: usize = 1000;

    let mut group = c.benchmark_group("wire_connections");
    for transport in [TransportKind::Threads, TransportKind::Epoll] {
        let server = BrokerServer::builder()
            .transport(transport)
            .bind("127.0.0.1:0")
            .expect("bind");
        let codec = CodecKind::Binary.codec();
        let mut subscribers: Vec<BufReader<TcpStream>> = Vec::with_capacity(SUBSCRIBERS);
        let setup_started = Instant::now();
        for i in 0..SUBSCRIBERS {
            let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
            stream.set_nodelay(true).expect("nodelay");
            for (corr, request) in [
                (
                    1,
                    Request::Hello {
                        version: 2,
                        client: format!("sub-{i}"),
                    },
                ),
                (
                    2,
                    Request::Subscribe {
                        filter: Filter::topic("bench"),
                    },
                ),
            ] {
                codec
                    .encode_client(&ClientFrame { corr, request })
                    .expect("encode")
                    .write_to(&mut stream)
                    .expect("write");
                Frame::read_from(&mut stream)
                    .expect("read reply")
                    .expect("reply");
            }
            subscribers.push(BufReader::new(stream));
        }
        let publisher =
            Client::connect_as(server.local_addr(), "bench-publisher").expect("connect publisher");

        // Headline numbers: connection setup and one full fan-out.
        let setup = setup_started.elapsed();
        let fanout_started = Instant::now();
        let outcome = publisher
            .publish(Event::topical("bench", "warmup"))
            .expect("publish");
        assert_eq!(outcome.delivered as usize, SUBSCRIBERS);
        for reader in subscribers.iter_mut() {
            Frame::read_from(reader).expect("read").expect("deliver");
        }
        eprintln!(
            "wire_connections/{}: {SUBSCRIBERS} subscribers up in {setup:.2?}, one fan-out {:.2?}",
            transport.name(),
            fanout_started.elapsed()
        );

        group.bench_with_input(
            BenchmarkId::new("publish_fanout_1k", transport.name()),
            &transport,
            |b, _| {
                b.iter(|| {
                    publisher
                        .publish(Event::topical("bench", "tick"))
                        .expect("publish");
                    // Fan-out completes when every subscriber socket has
                    // its Deliver frame; reads are serial but the frames
                    // arrive concurrently, identically for both cores.
                    for reader in subscribers.iter_mut() {
                        black_box(Frame::read_from(reader).expect("read").expect("deliver"));
                    }
                })
            },
        );
        drop(publisher);
        drop(subscribers);
        server.shutdown();
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_local_broker, bench_overlay, bench_overlay_construction,
        bench_broker_node_handle, bench_wire_codecs, bench_click_wal,
        bench_wire_connections
}
criterion_main!(benches);
