//! **B5** — end-to-end Reef day cycle: browsing ingest → crawl →
//! recommend → subscribe → poll → deliver → react, for both deployments.

use criterion::{criterion_group, criterion_main, Criterion};
use reef_core::{CentralizedReef, DistributedReef, ReefConfig};
use reef_simweb::browse::generate_history;
use reef_simweb::{BrowseConfig, WebConfig, WebUniverse};
use std::hint::black_box;

fn workload() -> (WebUniverse, reef_simweb::BrowsingHistory) {
    let universe = WebUniverse::generate(WebConfig::default(), 99);
    let config = BrowseConfig {
        users: 3,
        days: 10,
        mean_page_views_per_day: 40.0,
        favourites_per_user: 40,
        ..BrowseConfig::default()
    };
    let history = generate_history(&universe, &config, 99);
    (universe, history)
}

fn bench_centralized_day(c: &mut Criterion) {
    let (universe, history) = workload();
    c.bench_function("centralized_reef_10_days", |b| {
        b.iter(|| {
            let mut reef = CentralizedReef::new(&history.profiles, ReefConfig::default(), 5);
            let mut events = 0u64;
            for day in 0..history.days {
                events += reef.run_day(&universe, &history, day).events_delivered;
            }
            black_box(events)
        })
    });
}

fn bench_distributed_day(c: &mut Criterion) {
    let (universe, history) = workload();
    c.bench_function("distributed_reef_10_days", |b| {
        b.iter(|| {
            let mut reef = DistributedReef::new(&history.profiles, ReefConfig::default(), 5);
            let mut events = 0u64;
            for day in 0..history.days {
                events += reef.run_day(&universe, &history, day).events_delivered;
            }
            black_box(events)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_centralized_day, bench_distributed_day
}
criterion_main!(benches);
