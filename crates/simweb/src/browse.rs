//! User browsing simulation: generating the attention workload.
//!
//! The paper's §3.2 evaluation collected ten weeks of live browsing from
//! five users. This module generates a statistically comparable click
//! stream: each user has an interest profile over topics and a set of
//! favourite servers visited Zipf-style; every content-page view triggers a
//! burst of ad-server requests (reproducing the "70% of requests were to
//! advertisement servers" observation); occasional uniform exploration
//! produces the long tail of servers visited exactly once.

use crate::config::BrowseConfig;
use crate::topics::TopicId;
use crate::web::{ad_server_sampler, ServerId, ServerKind, WebUniverse};
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a simulated user.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct UserId(pub u32);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "user#{}", self.0)
    }
}

/// Why a request was issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestKind {
    /// A deliberate page view.
    Page,
    /// An ad/tracker call triggered by a page view.
    Ad,
    /// A multimedia resource view.
    Media,
}

/// One outgoing HTTP request in a user's history — the unit the paper calls
/// a *click* once recorded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// The user issuing the request.
    pub user: UserId,
    /// Day index (0-based).
    pub day: u32,
    /// Sequence number within the whole history (total order).
    pub tick: u64,
    /// Requested URL.
    pub url: String,
    /// Server the URL lives on.
    pub server: ServerId,
    /// Request kind (ground truth; the recorder does not see this).
    pub kind: RequestKind,
    /// The page view this request was triggered by, when it is an ad call.
    pub referrer: Option<String>,
}

/// A user's interest profile: weights over topics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// The user.
    pub user: UserId,
    /// Interest topics with weights, strongest first.
    pub interests: Vec<(TopicId, f64)>,
    /// Favourite content servers, most-visited first.
    pub favourites: Vec<ServerId>,
}

/// A complete generated browsing history.
#[derive(Debug, Clone)]
pub struct BrowsingHistory {
    /// Profiles of the simulated users.
    pub profiles: Vec<UserProfile>,
    /// All requests in tick order.
    pub requests: Vec<Request>,
    /// Days simulated.
    pub days: u32,
}

impl BrowsingHistory {
    /// Requests issued by one user.
    pub fn requests_of(&self, user: UserId) -> impl Iterator<Item = &Request> {
        self.requests.iter().filter(move |r| r.user == user)
    }

    /// Only the deliberate page views of one user.
    pub fn page_views_of(&self, user: UserId) -> impl Iterator<Item = &Request> {
        self.requests_of(user)
            .filter(|r| r.kind == RequestKind::Page)
    }
}

/// Generate a browsing history over `universe`.
///
/// Users' interests are drawn without replacement from the topic set; each
/// user's favourite servers are biased toward servers whose topics overlap
/// the user's interests, so browsing histories carry the topical signal the
/// content-based experiments (§3.3) rely on.
pub fn generate_history(
    universe: &WebUniverse,
    config: &BrowseConfig,
    seed: u64,
) -> BrowsingHistory {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xb0b0_cafe);
    let model = universe.model();
    let content: Vec<&crate::web::Server> = universe
        .servers()
        .iter()
        .filter(|s| s.kind == ServerKind::Content)
        .collect();
    let media: Vec<ServerId> = universe
        .servers()
        .iter()
        .filter(|s| s.kind == ServerKind::Multimedia)
        .map(|s| s.id)
        .collect();
    let spam: Vec<ServerId> = universe
        .servers()
        .iter()
        .filter(|s| s.kind == ServerKind::Spam)
        .map(|s| s.id)
        .collect();
    let (ad_ids, ad_zipf) = ad_server_sampler(universe, config.ad_zipf);
    // Global popularity ranking over content servers (shared across users).
    let popular_zipf = Zipf::new(content.len().max(1), 0.9);

    let mut profiles = Vec::with_capacity(config.users);
    for u in 0..config.users {
        let user = UserId(u as u32);
        // Interests: distinct topics, geometrically decaying weights.
        let mut topics: Vec<u32> = (0..model.topic_count() as u32).collect();
        let mut interests = Vec::new();
        for rank in 0..config.interests_per_user.min(topics.len()) {
            let pick = rng.gen_range(0..topics.len());
            let t = topics.swap_remove(pick);
            // Gentle decay: even the weakest interest leaves enough trace
            // in the history for term selection to pick it up (the paper's
            // 30 terms "sufficiently encompass a user's general
            // interests").
            interests.push((TopicId(t), 0.7f64.powi(rank as i32)));
        }
        // Favourites: prefer servers sharing the user's interest topics.
        let mut favourites = Vec::new();
        let interest_set: Vec<TopicId> = interests.iter().map(|(t, _)| *t).collect();
        let mut candidates: Vec<ServerId> = content
            .iter()
            .filter(|s| s.topics.iter().any(|(t, _)| interest_set.contains(t)))
            .map(|s| s.id)
            .collect();
        let mut others: Vec<ServerId> = content
            .iter()
            .filter(|s| !s.topics.iter().any(|(t, _)| interest_set.contains(t)))
            .map(|s| s.id)
            .collect();
        while favourites.len() < config.favourites_per_user
            && !(candidates.is_empty() && others.is_empty())
        {
            // 80% of favourites are on-interest when available.
            let from_interest =
                !candidates.is_empty() && (others.is_empty() || rng.gen::<f64>() < 0.8);
            let pool = if from_interest {
                &mut candidates
            } else {
                &mut others
            };
            let pick = rng.gen_range(0..pool.len());
            favourites.push(pool.swap_remove(pick));
        }
        profiles.push(UserProfile {
            user,
            interests,
            favourites,
        });
    }

    let favourite_zipf = Zipf::new(config.favourites_per_user.max(1), config.favourite_zipf);
    let mut requests = Vec::new();
    let mut tick = 0u64;
    for day in 0..config.days {
        for profile in &profiles {
            // Day-to-day volume varies ±50% around the mean.
            let views =
                (config.mean_page_views_per_day * (0.5 + rng.gen::<f64>())).round() as usize;
            for _ in 0..views {
                let roll: f64 = rng.gen();
                if roll < config.multimedia_rate && !media.is_empty() {
                    let sid = media[rng.gen_range(0..media.len())];
                    push_page_view(
                        universe,
                        &mut rng,
                        &mut requests,
                        &mut tick,
                        profile.user,
                        day,
                        sid,
                        RequestKind::Media,
                    );
                    continue;
                }
                if roll < config.multimedia_rate + config.spam_rate && !spam.is_empty() {
                    let sid = spam[rng.gen_range(0..spam.len())];
                    push_page_view(
                        universe,
                        &mut rng,
                        &mut requests,
                        &mut tick,
                        profile.user,
                        day,
                        sid,
                        RequestKind::Page,
                    );
                    continue;
                }
                // Choose a content server: favourite / popular / random.
                let sid =
                    if rng.gen::<f64>() < config.favourite_rate && !profile.favourites.is_empty() {
                        profile.favourites[favourite_zipf
                            .sample(&mut rng)
                            .min(profile.favourites.len() - 1)]
                    } else if rng.gen::<f64>() < config.popular_rate {
                        content[popular_zipf.sample(&mut rng)].id
                    } else {
                        content[rng.gen_range(0..content.len())].id
                    };
                let view_url = push_page_view(
                    universe,
                    &mut rng,
                    &mut requests,
                    &mut tick,
                    profile.user,
                    day,
                    sid,
                    RequestKind::Page,
                );
                // Ad calls triggered by this page view.
                if let Some((page_url, ad_calls)) = view_url {
                    for _ in 0..ad_calls {
                        let ad_sid = ad_ids[ad_zipf.sample(&mut rng).min(ad_ids.len() - 1)];
                        let ad_server = universe.server(ad_sid).expect("ad server exists");
                        let ad_page = universe.page(ad_server.pages[0]).expect("pixel page");
                        requests.push(Request {
                            user: profile.user,
                            day,
                            tick,
                            url: ad_page.url.clone(),
                            server: ad_sid,
                            kind: RequestKind::Ad,
                            referrer: Some(page_url.clone()),
                        });
                        tick += 1;
                    }
                }
            }
        }
    }

    BrowsingHistory {
        profiles,
        requests,
        days: config.days,
    }
}

/// Issue one page view on `server`; returns the URL and its ad-call count
/// for content pages.
#[allow(clippy::too_many_arguments)]
fn push_page_view(
    universe: &WebUniverse,
    rng: &mut StdRng,
    requests: &mut Vec<Request>,
    tick: &mut u64,
    user: UserId,
    day: u32,
    server: ServerId,
    kind: RequestKind,
) -> Option<(String, usize)> {
    let srv = universe.server(server)?;
    if srv.pages.is_empty() {
        return None;
    }
    let pid = srv.pages[rng.gen_range(0..srv.pages.len())];
    let page = universe.page(pid)?;
    requests.push(Request {
        user,
        day,
        tick: *tick,
        url: page.url.clone(),
        server,
        kind,
        referrer: None,
    });
    *tick += 1;
    if kind == RequestKind::Page && srv.kind == ServerKind::Content {
        Some((page.url.clone(), page.ad_calls))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WebConfig;

    fn small_history() -> (WebUniverse, BrowsingHistory) {
        let universe = WebUniverse::generate(WebConfig::default(), 3);
        let config = BrowseConfig {
            users: 2,
            days: 5,
            mean_page_views_per_day: 20.0,
            favourites_per_user: 30,
            ..BrowseConfig::default()
        };
        let history = generate_history(&universe, &config, 99);
        (universe, history)
    }

    #[test]
    fn history_is_deterministic() {
        let (_u1, h1) = small_history();
        let (_u2, h2) = small_history();
        assert_eq!(h1.requests.len(), h2.requests.len());
        assert_eq!(h1.requests[5], h2.requests[5]);
    }

    #[test]
    fn ticks_are_strictly_increasing() {
        let (_u, h) = small_history();
        for w in h.requests.windows(2) {
            assert!(w[1].tick > w[0].tick);
        }
    }

    #[test]
    fn ad_requests_follow_page_views_with_referrer() {
        let (_u, h) = small_history();
        let ads = h.requests.iter().filter(|r| r.kind == RequestKind::Ad);
        for ad in ads {
            assert!(ad.referrer.is_some());
        }
    }

    #[test]
    fn every_user_browses_every_day() {
        let (_u, h) = small_history();
        for u in 0..2u32 {
            for d in 0..5u32 {
                assert!(
                    h.requests.iter().any(|r| r.user == UserId(u) && r.day == d),
                    "user {u} idle on day {d}"
                );
            }
        }
    }

    #[test]
    fn profiles_have_distinct_interests() {
        let (_u, h) = small_history();
        for p in &h.profiles {
            let mut topics: Vec<u32> = p.interests.iter().map(|(t, _)| t.0).collect();
            topics.sort_unstable();
            let n = topics.len();
            topics.dedup();
            assert_eq!(topics.len(), n);
        }
    }

    #[test]
    fn favourites_lean_toward_interest_topics() {
        let (u, h) = small_history();
        let p = &h.profiles[0];
        let interests: Vec<TopicId> = p.interests.iter().map(|(t, _)| *t).collect();
        let on_interest = p
            .favourites
            .iter()
            .filter(|sid| {
                u.server(**sid)
                    .unwrap()
                    .topics
                    .iter()
                    .any(|(t, _)| interests.contains(t))
            })
            .count();
        assert!(
            on_interest * 2 > p.favourites.len(),
            "only {on_interest}/{} favourites on interest",
            p.favourites.len()
        );
    }

    #[test]
    fn ad_share_is_near_configured_rate() {
        let universe = WebUniverse::generate(WebConfig::default(), 5);
        let config = BrowseConfig {
            users: 3,
            days: 10,
            mean_page_views_per_day: 50.0,
            favourites_per_user: 40,
            ..BrowseConfig::default()
        };
        let h = generate_history(&universe, &config, 1);
        let ads = h
            .requests
            .iter()
            .filter(|r| r.kind == RequestKind::Ad)
            .count();
        let share = ads as f64 / h.requests.len() as f64;
        assert!((0.6..0.8).contains(&share), "ad share {share}");
    }

    #[test]
    fn page_views_of_filters_correctly() {
        let (_u, h) = small_history();
        for r in h.page_views_of(UserId(0)) {
            assert_eq!(r.user, UserId(0));
            assert_eq!(r.kind, RequestKind::Page);
        }
    }
}
