//! The simulated Web: servers, pages, and feeds.
//!
//! A [`WebUniverse`] is generated deterministically from a [`WebConfig`]
//! and a seed. It stands in for the live Web of the paper's user study:
//! the crawler fetches page documents from it, the feed proxy polls feed
//! URLs on it, and the browsing simulator (see [`crate::browse`]) drives
//! users over it.
//!
//! Server kinds are *not* exposed to the crawler through URLs; ad, spam and
//! multimedia pages are recognizable only by their content (marker terms,
//! content types), so the crawler's classifier does real work — the same
//! decision problem the Reef server faced (§3.1).

use crate::config::WebConfig;
use crate::topics::{TopicId, TopicModel};
use crate::words::synth_word;
use crate::zipf::{sample_burst, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a server in a [`WebUniverse`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ServerId(pub u32);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "srv#{}", self.0)
    }
}

/// Identifier of a page.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PageId(pub u32);

/// Identifier of a Web feed.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct FeedId(pub u32);

impl fmt::Display for FeedId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "feed#{}", self.0)
    }
}

/// What a server is — ground truth used to *evaluate* the crawler's
/// classifier, never given to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServerKind {
    /// Ordinary content server.
    Content,
    /// Advertisement / tracking server.
    Ad,
    /// Spam site.
    Spam,
    /// Multimedia (video/audio) server.
    Multimedia,
}

impl fmt::Display for ServerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ServerKind::Content => "content",
            ServerKind::Ad => "ad",
            ServerKind::Spam => "spam",
            ServerKind::Multimedia => "multimedia",
        };
        f.write_str(s)
    }
}

/// Marker terms that saturate ad-server responses; the crawler's content
/// classifier keys on their density.
pub const AD_MARKERS: [&str; 8] = [
    "adclick",
    "banner",
    "trackpixel",
    "sponsor",
    "promo",
    "impression",
    "clickthru",
    "doubleserve",
];

/// Marker terms that saturate spam pages.
pub const SPAM_MARKERS: [&str; 8] = [
    "freemoney",
    "winbig",
    "casinox",
    "pharmadeal",
    "replica",
    "lottowin",
    "hotsingles",
    "cheapmeds",
];

/// A server in the universe.
#[derive(Debug, Clone)]
pub struct Server {
    /// Identifier.
    pub id: ServerId,
    /// Hostname, e.g. `rukan123.example`.
    pub host: String,
    /// Ground-truth kind.
    pub kind: ServerKind,
    /// Topic mixture of the server's content (content servers only).
    pub topics: Vec<(TopicId, f64)>,
    /// Pages hosted here.
    pub pages: Vec<PageId>,
    /// Feeds hosted here.
    pub feeds: Vec<FeedId>,
}

/// A page document, as fetched by the crawler or a browser.
#[derive(Debug, Clone)]
pub struct Page {
    /// Identifier.
    pub id: PageId,
    /// Absolute URL.
    pub url: String,
    /// Hosting server.
    pub server: ServerId,
    /// Topic mixture the body was generated from.
    pub topics: Vec<(TopicId, f64)>,
    /// MIME content type (`text/html`, `video/mp4`, `image/gif`, …).
    pub content_type: &'static str,
    /// Body text (token stream).
    pub text: String,
    /// Feed autodiscovery links (`<link rel="alternate">` equivalents).
    pub feed_links: Vec<String>,
    /// Number of ad-server requests a browser triggers when viewing this
    /// page.
    pub ad_calls: usize,
}

/// Syndication format of a feed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SimFeedFormat {
    /// RSS 2.0.
    Rss2,
    /// Atom 1.0.
    Atom,
    /// RSS 1.0 (RDF).
    Rdf,
}

/// A feed hosted on some server.
#[derive(Debug, Clone)]
pub struct FeedSpec {
    /// Identifier.
    pub id: FeedId,
    /// Absolute URL of the feed document.
    pub url: String,
    /// Hosting server.
    pub server: ServerId,
    /// Feed title.
    pub title: String,
    /// Topic mixture of the feed's items.
    pub topics: Vec<(TopicId, f64)>,
    /// Mean new items per day (most feeds update infrequently, cf. Liu et
    /// al. \[13\] in the paper).
    pub daily_rate: f64,
    /// Syndication format served at the URL.
    pub format: SimFeedFormat,
}

/// One item of a feed on a given day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimFeedItem {
    /// Globally unique item id.
    pub guid: String,
    /// Item headline.
    pub title: String,
    /// Link to the story.
    pub link: String,
    /// Body / description text.
    pub body: String,
    /// Day the item appeared.
    pub published_day: u32,
}

/// The simulated Web.
pub struct WebUniverse {
    seed: u64,
    model: TopicModel,
    servers: Vec<Server>,
    pages: Vec<Page>,
    feeds: Vec<FeedSpec>,
    page_by_url: HashMap<String, PageId>,
    feed_by_url: HashMap<String, FeedId>,
    config: WebConfig,
}

impl fmt::Debug for WebUniverse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WebUniverse")
            .field("servers", &self.servers.len())
            .field("pages", &self.pages.len())
            .field("feeds", &self.feeds.len())
            .finish()
    }
}

impl WebUniverse {
    /// Generate a universe deterministically from `config` and `seed`.
    pub fn generate(config: WebConfig, seed: u64) -> Self {
        let model = TopicModel::generate(config.topic_model.clone(), seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0001);
        let mut servers = Vec::new();
        let mut pages: Vec<Page> = Vec::new();
        let mut feeds: Vec<FeedSpec> = Vec::new();

        let add_server = |servers: &mut Vec<Server>, kind: ServerKind, rng: &mut StdRng| {
            let id = ServerId(servers.len() as u32);
            let host = format!(
                "{}{}.example",
                synth_word(seed ^ 0x05f5, servers.len()),
                id.0
            );
            let topics = if kind == ServerKind::Content {
                let primary = TopicId(rng.gen_range(0..model.topic_count() as u32));
                if rng.gen::<f64>() < 0.3 {
                    let secondary = TopicId(rng.gen_range(0..model.topic_count() as u32));
                    vec![(primary, 0.75), (secondary, 0.25)]
                } else {
                    vec![(primary, 1.0)]
                }
            } else {
                Vec::new()
            };
            servers.push(Server {
                id,
                host,
                kind,
                topics,
                pages: Vec::new(),
                feeds: Vec::new(),
            });
            id
        };

        // Content servers with pages and feeds.
        for _ in 0..config.content_servers {
            let sid = add_server(&mut servers, ServerKind::Content, &mut rng);
            let n_pages = rng.gen_range(config.min_pages_per_server..=config.max_pages_per_server);
            // Feeds first so pages can link to them.
            let n_feeds = if rng.gen::<f64>() < config.feed_probability {
                1 + sample_burst(&mut rng, config.extra_feed_probability, 3)
            } else {
                0
            };
            let server_topics = servers[sid.0 as usize].topics.clone();
            let host = servers[sid.0 as usize].host.clone();
            for k in 0..n_feeds {
                let fid = FeedId(feeds.len() as u32);
                let format = match rng.gen_range(0..10) {
                    0..=5 => SimFeedFormat::Rss2,
                    6..=8 => SimFeedFormat::Atom,
                    _ => SimFeedFormat::Rdf,
                };
                let ext = match format {
                    SimFeedFormat::Rss2 => "rss",
                    SimFeedFormat::Atom => "atom",
                    SimFeedFormat::Rdf => "rdf",
                };
                let url = format!("http://{host}/feed{k}.{ext}");
                // Update rates are heavy-tailed: median well below one item
                // per day, a few very chatty feeds.
                let daily_rate = match rng.gen_range(0..10) {
                    0 => 3.0 + rng.gen::<f64>() * 5.0,
                    1..=3 => 0.5 + rng.gen::<f64>(),
                    _ => 0.05 + rng.gen::<f64>() * 0.3,
                };
                feeds.push(FeedSpec {
                    id: fid,
                    url: url.clone(),
                    server: sid,
                    title: format!("{} feed {k}", host),
                    topics: server_topics.clone(),
                    daily_rate,
                    format,
                });
                servers[sid.0 as usize].feeds.push(fid);
            }
            let feed_urls: Vec<String> = servers[sid.0 as usize]
                .feeds
                .iter()
                .map(|f| feeds[f.0 as usize].url.clone())
                .collect();
            for j in 0..n_pages {
                let pid = PageId(pages.len() as u32);
                let url = format!("http://{host}/p{j}.html");
                let mut topics = server_topics.clone();
                // Pages occasionally drift off the server's main topics.
                if rng.gen::<f64>() < 0.15 {
                    topics.push((TopicId(rng.gen_range(0..model.topic_count() as u32)), 0.4));
                }
                let mut page_rng = StdRng::seed_from_u64(
                    seed ^ 0x7a6e_0000 ^ (pid.0 as u64).wrapping_mul(0x9e37_79b9),
                );
                let text = model.sample_text(&mut page_rng, &topics, config.page_tokens);
                let ad_calls = sample_ad_calls(&mut rng, config.mean_ad_calls_per_page);
                pages.push(Page {
                    id: pid,
                    url,
                    server: sid,
                    topics,
                    content_type: "text/html",
                    text,
                    feed_links: feed_urls.clone(),
                    ad_calls,
                });
                servers[sid.0 as usize].pages.push(pid);
            }
        }

        // Ad servers: a single pixel page each, saturated with ad markers.
        for _ in 0..config.ad_servers {
            let sid = add_server(&mut servers, ServerKind::Ad, &mut rng);
            let host = servers[sid.0 as usize].host.clone();
            let pid = PageId(pages.len() as u32);
            let mut text = String::new();
            for i in 0..24 {
                if i > 0 {
                    text.push(' ');
                }
                text.push_str(AD_MARKERS[rng.gen_range(0..AD_MARKERS.len())]);
            }
            pages.push(Page {
                id: pid,
                url: format!("http://{host}/pixel.gif"),
                server: sid,
                topics: Vec::new(),
                content_type: "image/gif",
                text,
                feed_links: Vec::new(),
                ad_calls: 0,
            });
            servers[sid.0 as usize].pages.push(pid);
        }

        // Spam servers: a few pages of spam markers mixed with background.
        for _ in 0..config.spam_servers {
            let sid = add_server(&mut servers, ServerKind::Spam, &mut rng);
            let host = servers[sid.0 as usize].host.clone();
            for j in 0..3 {
                let pid = PageId(pages.len() as u32);
                let mut text = String::new();
                for i in 0..60 {
                    if i > 0 {
                        text.push(' ');
                    }
                    if i % 3 == 0 {
                        text.push_str(SPAM_MARKERS[rng.gen_range(0..SPAM_MARKERS.len())]);
                    } else {
                        text.push_str(model.sample_background(&mut rng));
                    }
                }
                pages.push(Page {
                    id: pid,
                    url: format!("http://{host}/offer{j}.html"),
                    server: sid,
                    topics: Vec::new(),
                    content_type: "text/html",
                    text,
                    feed_links: Vec::new(),
                    ad_calls: 0,
                });
                servers[sid.0 as usize].pages.push(pid);
            }
        }

        // Multimedia servers: video resources.
        for _ in 0..config.multimedia_servers {
            let sid = add_server(&mut servers, ServerKind::Multimedia, &mut rng);
            let host = servers[sid.0 as usize].host.clone();
            for j in 0..5 {
                let pid = PageId(pages.len() as u32);
                pages.push(Page {
                    id: pid,
                    url: format!("http://{host}/clip{j}.mp4"),
                    server: sid,
                    topics: Vec::new(),
                    content_type: "video/mp4",
                    text: String::new(),
                    feed_links: Vec::new(),
                    ad_calls: 0,
                });
                servers[sid.0 as usize].pages.push(pid);
            }
        }

        let page_by_url = pages
            .iter()
            .map(|p| (p.url.clone(), p.id))
            .collect::<HashMap<_, _>>();
        let feed_by_url = feeds
            .iter()
            .map(|f| (f.url.clone(), f.id))
            .collect::<HashMap<_, _>>();

        WebUniverse {
            seed,
            model,
            servers,
            pages,
            feeds,
            page_by_url,
            feed_by_url,
            config,
        }
    }

    /// The topic model text was generated from.
    pub fn model(&self) -> &TopicModel {
        &self.model
    }

    /// The generation config.
    pub fn config(&self) -> &WebConfig {
        &self.config
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All servers.
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// Look up a server.
    pub fn server(&self, id: ServerId) -> Option<&Server> {
        self.servers.get(id.0 as usize)
    }

    /// All pages.
    pub fn pages(&self) -> &[Page] {
        &self.pages
    }

    /// Look up a page by id.
    pub fn page(&self, id: PageId) -> Option<&Page> {
        self.pages.get(id.0 as usize)
    }

    /// Fetch a page by URL — what the crawler and browser do.
    pub fn fetch(&self, url: &str) -> Option<&Page> {
        self.page_by_url.get(url).and_then(|id| self.page(*id))
    }

    /// All feeds.
    pub fn feeds(&self) -> &[FeedSpec] {
        &self.feeds
    }

    /// Look up a feed by id.
    pub fn feed(&self, id: FeedId) -> Option<&FeedSpec> {
        self.feeds.get(id.0 as usize)
    }

    /// Look up a feed by URL.
    pub fn feed_by_url(&self, url: &str) -> Option<&FeedSpec> {
        self.feed_by_url.get(url).and_then(|id| self.feed(*id))
    }

    /// The items a feed has published on `day`. Deterministic in
    /// `(universe seed, feed, day)`.
    pub fn feed_items_on_day(&self, feed: FeedId, day: u32) -> Vec<SimFeedItem> {
        let Some(spec) = self.feed(feed) else {
            return Vec::new();
        };
        let mut rng = StdRng::seed_from_u64(
            self.seed
                ^ 0xfeed_0000
                ^ (feed.0 as u64).wrapping_mul(0x100_0001)
                ^ (day as u64).wrapping_mul(0x9e37_79b9),
        );
        // Item count: Bernoulli for sub-daily rates, Poisson-ish above.
        let mut count = spec.daily_rate.floor() as usize;
        if rng.gen::<f64>() < spec.daily_rate.fract() {
            count += 1;
        }
        let mut items = Vec::with_capacity(count);
        for i in 0..count {
            let title = self.model.sample_text(&mut rng, &spec.topics, 6);
            let body = self.model.sample_text(&mut rng, &spec.topics, 40);
            let host = &self.servers[spec.server.0 as usize].host;
            items.push(SimFeedItem {
                guid: format!("{}#d{}i{}", spec.url, day, i),
                title,
                link: format!("http://{host}/story-d{day}-{i}.html"),
                body,
                published_day: day,
            });
        }
        items
    }

    /// All items a feed published in `0..=day` (the "current document" a
    /// poll at `day` would see, windowed to the most recent `window` days).
    pub fn feed_items_until(&self, feed: FeedId, day: u32, window: u32) -> Vec<SimFeedItem> {
        let start = day.saturating_sub(window);
        let mut items: Vec<SimFeedItem> = (start..=day)
            .flat_map(|d| self.feed_items_on_day(feed, d))
            .collect();
        // Newest first, like real feed documents.
        items.reverse();
        items
    }

    /// Ground-truth count of servers by kind (for evaluating the crawler's
    /// classifier).
    pub fn server_count(&self, kind: ServerKind) -> usize {
        self.servers.iter().filter(|s| s.kind == kind).count()
    }
}

/// Mean-preserving integer sample of ad calls per page: a page has
/// `floor(mean)` calls plus one more with probability `fract(mean)`, then
/// heavy-tailed extras so some pages are tracker-laden.
fn sample_ad_calls<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> usize {
    let base = mean.floor() as usize;
    let mut n = base;
    if rng.gen::<f64>() < mean.fract() {
        n += 1;
    }
    // Shift one call of mass into a tail: ~12% of pages gain 1-3 extras,
    // balanced by 12% losing one.
    if rng.gen::<f64>() < 0.12 {
        n += rng.gen_range(1..=3usize);
    } else if n > 0 && rng.gen::<f64>() < 0.12 {
        n -= 1;
    }
    n
}

/// Zipf sampler over the ad-server population, shared by the browser
/// simulator. Exposed here so browse and tests agree on the distribution.
pub fn ad_server_sampler(universe: &WebUniverse, exponent: f64) -> (Vec<ServerId>, Zipf) {
    let ids: Vec<ServerId> = universe
        .servers()
        .iter()
        .filter(|s| s.kind == ServerKind::Ad)
        .map(|s| s.id)
        .collect();
    let zipf = Zipf::new(ids.len().max(1), exponent);
    (ids, zipf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WebUniverse {
        WebUniverse::generate(WebConfig::default(), 7)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.pages().len(), b.pages().len());
        assert_eq!(a.pages()[10].text, b.pages()[10].text);
        assert_eq!(a.feeds().len(), b.feeds().len());
    }

    #[test]
    fn server_counts_match_config() {
        let u = small();
        let c = u.config();
        assert_eq!(u.server_count(ServerKind::Content), c.content_servers);
        assert_eq!(u.server_count(ServerKind::Ad), c.ad_servers);
        assert_eq!(u.server_count(ServerKind::Spam), c.spam_servers);
        assert_eq!(u.server_count(ServerKind::Multimedia), c.multimedia_servers);
    }

    #[test]
    fn fetch_round_trips_urls() {
        let u = small();
        for p in u.pages().iter().take(50) {
            assert_eq!(u.fetch(&p.url).unwrap().id, p.id);
        }
        assert!(u.fetch("http://nowhere.example/x.html").is_none());
    }

    #[test]
    fn content_pages_advertise_their_servers_feeds() {
        let u = small();
        let with_feeds = u
            .servers()
            .iter()
            .find(|s| s.kind == ServerKind::Content && !s.feeds.is_empty())
            .expect("some server has feeds");
        let page = u.page(with_feeds.pages[0]).unwrap();
        assert_eq!(page.feed_links.len(), with_feeds.feeds.len());
        for link in &page.feed_links {
            assert!(u.feed_by_url(link).is_some());
        }
    }

    #[test]
    fn ad_pages_are_marker_saturated_gifs() {
        let u = small();
        let ad = u
            .servers()
            .iter()
            .find(|s| s.kind == ServerKind::Ad)
            .unwrap();
        let page = u.page(ad.pages[0]).unwrap();
        assert_eq!(page.content_type, "image/gif");
        assert!(AD_MARKERS.iter().any(|m| page.text.contains(m)));
    }

    #[test]
    fn multimedia_pages_have_video_content_type() {
        let u = small();
        let mm = u
            .servers()
            .iter()
            .find(|s| s.kind == ServerKind::Multimedia)
            .unwrap();
        assert_eq!(u.page(mm.pages[0]).unwrap().content_type, "video/mp4");
    }

    #[test]
    fn feed_items_are_deterministic_and_dated() {
        let u = small();
        let feed = u.feeds()[0].id;
        let a = u.feed_items_on_day(feed, 5);
        let b = u.feed_items_on_day(feed, 5);
        assert_eq!(a, b);
        for item in &a {
            assert_eq!(item.published_day, 5);
            assert!(item.guid.contains("#d5"));
        }
    }

    #[test]
    fn feed_items_until_windows_history() {
        let u = small();
        // Find a chatty feed so the window matters.
        let feed = u
            .feeds()
            .iter()
            .max_by(|a, b| a.daily_rate.partial_cmp(&b.daily_rate).unwrap())
            .unwrap()
            .id;
        let all = u.feed_items_until(feed, 20, 20);
        let windowed = u.feed_items_until(feed, 20, 3);
        assert!(windowed.len() <= all.len());
        for item in &windowed {
            assert!(item.published_day >= 17);
        }
    }

    #[test]
    fn feed_rates_are_heavy_tailed() {
        let u = WebUniverse::generate(WebConfig::paper_e1(), 11);
        let rates: Vec<f64> = u.feeds().iter().map(|f| f.daily_rate).collect();
        let slow = rates.iter().filter(|r| **r < 0.5).count();
        let fast = rates.iter().filter(|r| **r > 2.0).count();
        assert!(slow > fast * 3, "slow={slow} fast={fast}");
    }

    #[test]
    fn hosts_are_unique() {
        let u = small();
        let mut hosts: Vec<&str> = u.servers().iter().map(|s| s.host.as_str()).collect();
        hosts.sort_unstable();
        let before = hosts.len();
        hosts.dedup();
        assert_eq!(hosts.len(), before);
    }
}
