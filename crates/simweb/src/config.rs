//! Configuration presets for the simulated Web and browsing workloads.

use crate::topics::TopicModelConfig;
use serde::{Deserialize, Serialize};

/// Sizing and shape of a generated [`crate::WebUniverse`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WebConfig {
    /// Topic model shape.
    pub topic_model: TopicModelConfig,
    /// Number of ordinary content servers.
    pub content_servers: usize,
    /// Number of advertisement/tracker servers.
    pub ad_servers: usize,
    /// Number of spam servers.
    pub spam_servers: usize,
    /// Number of multimedia (video/audio) servers.
    pub multimedia_servers: usize,
    /// Minimum pages per content server.
    pub min_pages_per_server: usize,
    /// Maximum pages per content server.
    pub max_pages_per_server: usize,
    /// Tokens per generated page body.
    pub page_tokens: usize,
    /// Probability that a content server hosts at least one Web feed.
    pub feed_probability: f64,
    /// Probability of each additional feed beyond the first (geometric).
    pub extra_feed_probability: f64,
    /// Mean ad calls embedded per content page (the number of ad-server
    /// requests a page view triggers).
    pub mean_ad_calls_per_page: f64,
}

impl Default for WebConfig {
    fn default() -> Self {
        WebConfig {
            topic_model: TopicModelConfig::default(),
            content_servers: 400,
            ad_servers: 600,
            spam_servers: 20,
            multimedia_servers: 20,
            min_pages_per_server: 3,
            max_pages_per_server: 24,
            page_tokens: 120,
            feed_probability: 0.45,
            extra_feed_probability: 0.2,
            mean_ad_calls_per_page: 2.33,
        }
    }
}

impl WebConfig {
    /// Universe sized for the §3.2 browsing study (experiment **E1**):
    /// 5 users, 10 weeks, ≈77k requests, ≈2.5k distinct servers.
    pub fn paper_e1() -> Self {
        WebConfig {
            content_servers: 1000,
            ad_servers: 2600,
            spam_servers: 30,
            multimedia_servers: 30,
            feed_probability: 0.38,
            ..WebConfig::default()
        }
    }

    /// Universe sized for the §3.3 video-news study (experiment **E2**):
    /// one user browsing >10,000 pages in six weeks.
    ///
    /// Each topic is identified by 8 equally important core terms;
    /// everything else a page says is shared background vocabulary. A
    /// five-term query therefore under-covers the user's four interests
    /// (+12% in the paper), ~30 terms saturate all four (the +34% peak at
    /// N=30), and longer queries only add background noise terms (the
    /// dilution beyond the peak).
    pub fn paper_e2() -> Self {
        let topic_model = TopicModelConfig {
            terms_per_topic: 8,
            core_terms_per_topic: 8,
            core_share: 1.0,
            ..TopicModelConfig::default()
        };
        WebConfig {
            topic_model,
            content_servers: 600,
            ad_servers: 900,
            ..WebConfig::default()
        }
    }
}

/// Shape of a generated browsing history (see [`crate::browse`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BrowseConfig {
    /// Number of users.
    pub users: usize,
    /// Number of days of history.
    pub days: u32,
    /// Mean content-page views per user per day.
    pub mean_page_views_per_day: f64,
    /// Number of favourite content servers per user.
    pub favourites_per_user: usize,
    /// Zipf exponent over a user's favourite servers.
    pub favourite_zipf: f64,
    /// Probability that a page view goes to a favourite server (vs global
    /// popularity or random exploration).
    pub favourite_rate: f64,
    /// Probability that a non-favourite page view follows global popularity
    /// (the remainder is uniform random exploration, which produces
    /// single-visit servers).
    pub popular_rate: f64,
    /// Zipf exponent over ad servers (flat enough that thousands of
    /// distinct trackers are hit, many exactly once).
    pub ad_zipf: f64,
    /// Probability that a page view is to a multimedia server.
    pub multimedia_rate: f64,
    /// Probability that a page view lands on a spam server.
    pub spam_rate: f64,
    /// Number of interest topics per user.
    pub interests_per_user: usize,
}

impl Default for BrowseConfig {
    fn default() -> Self {
        BrowseConfig {
            users: 5,
            days: 70,
            mean_page_views_per_day: 66.0,
            favourites_per_user: 110,
            favourite_zipf: 1.0,
            favourite_rate: 0.82,
            popular_rate: 0.6,
            ad_zipf: 1.4,
            multimedia_rate: 0.02,
            spam_rate: 0.01,
            interests_per_user: 4,
        }
    }
}

impl BrowseConfig {
    /// The §3.2 study: 5 users, 10 weeks (70 days), ≈220 requests per user
    /// per day of which ≈70% go to ad servers.
    pub fn paper_e1() -> Self {
        BrowseConfig::default()
    }

    /// The §3.3 study: one user, six weeks, >10,000 page views. The test
    /// user barely touches spam (deliberate browsing, not ambient
    /// traffic), so spam vocabulary does not crowd the interest terms out
    /// of the top of the Offer-Weight ranking.
    pub fn paper_e2() -> Self {
        BrowseConfig {
            users: 1,
            days: 42,
            mean_page_views_per_day: 250.0,
            favourites_per_user: 80,
            spam_rate: 0.002,
            ..BrowseConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let w = WebConfig::default();
        assert!(w.min_pages_per_server <= w.max_pages_per_server);
        assert!(w.feed_probability <= 1.0);
        let b = BrowseConfig::default();
        assert!(b.favourite_rate <= 1.0);
        assert!(b.users > 0);
    }

    #[test]
    fn e1_preset_matches_paper_scale() {
        let b = BrowseConfig::paper_e1();
        // 5 users * 70 days * 66 views * (1 + 2.33 ads) ≈ 77k requests.
        let w = WebConfig::paper_e1();
        let requests = b.users as f64
            * b.days as f64
            * b.mean_page_views_per_day
            * (1.0 + w.mean_ad_calls_per_page);
        assert!(
            (70_000.0..90_000.0).contains(&requests),
            "requests ≈ {requests}"
        );
    }

    #[test]
    fn e2_preset_is_single_user_six_weeks() {
        let b = BrowseConfig::paper_e2();
        assert_eq!(b.users, 1);
        assert_eq!(b.days, 42);
        assert!(b.mean_page_views_per_day * b.days as f64 > 10_000.0);
    }
}
