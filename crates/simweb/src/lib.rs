//! # reef-simweb — synthetic Web universe and browsing workload
//!
//! The Reef paper's evaluation (§3.2, §3.3) was run on ten weeks of live
//! browsing by real users over the real Web. Neither is available to a
//! reproduction, so this crate provides calibrated substitutes:
//!
//! * a **topic model** ([`TopicModel`]) generating all text — pages, feed
//!   items, and (via `reef-videonews`) video-story transcripts — with the
//!   frequency structure term-weighting algorithms rely on;
//! * a **simulated Web** ([`WebUniverse`]): content servers with pages and
//!   feed-autodiscovery links, ad/tracker servers, spam sites and
//!   multimedia servers, all distinguishable only by *content*;
//! * a **browsing simulator** ([`browse::generate_history`]) producing
//!   per-user click streams whose aggregate statistics reproduce the
//!   paper's: ≈70% of requests to ad servers, thousands of distinct
//!   servers, a long tail visited exactly once;
//! * the **§3.2 statistics** ([`stats::browsing_stats`]) computed over a
//!   history.
//!
//! Everything is deterministic in `(config, seed)`.
//!
//! ```
//! use reef_simweb::{BrowseConfig, WebConfig, WebUniverse};
//! use reef_simweb::browse::generate_history;
//!
//! let universe = WebUniverse::generate(WebConfig::default(), 42);
//! let mut cfg = BrowseConfig::default();
//! cfg.users = 1;
//! cfg.days = 3;
//! let history = generate_history(&universe, &cfg, 42);
//! assert!(!history.requests.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod browse;
pub mod config;
pub mod stats;
pub mod topics;
pub mod web;
pub mod words;
pub mod zipf;

pub use browse::{BrowsingHistory, Request, RequestKind, UserId, UserProfile};
pub use config::{BrowseConfig, WebConfig};
pub use stats::{browsing_stats, BrowsingStats};
pub use topics::{Topic, TopicId, TopicModel, TopicModelConfig};
pub use web::{
    FeedId, FeedSpec, Page, PageId, Server, ServerId, ServerKind, SimFeedFormat, SimFeedItem,
    WebUniverse, AD_MARKERS, SPAM_MARKERS,
};
