//! Zipfian and weighted sampling utilities.
//!
//! Web workloads are heavy-tailed: a few servers absorb most requests, a
//! few terms dominate a topic's vocabulary. The paper's browsing data shows
//! exactly this shape (70% of requests to ad servers, a third of servers
//! visited only once), so the workload generator samples almost everything
//! from Zipf-like distributions. Implemented here from scratch to stay
//! within the approved dependency set.

use rand::Rng;

/// A Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank = k) ∝ 1 / (k + 1)^s`.
///
/// Sampling is O(log n) via binary search over precomputed cumulative
/// weights.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use reef_simweb::zipf::Zipf;
///
/// let z = Zipf::new(100, 1.1);
/// let mut rng = StdRng::seed_from_u64(7);
/// let first = (0..1000).filter(|_| z.sample(&mut rng) == 0).count();
/// let tail = (0..1000).filter(|_| z.sample(&mut rng) == 99).count();
/// assert!(first > tail);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(s.is_finite(), "zipf exponent must be finite");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// `true` when the distribution has a single rank.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draw a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x: f64 = rng.gen::<f64>() * total;
        self.cumulative
            .partition_point(|&c| c < x)
            .min(self.cumulative.len() - 1)
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        let total = *self.cumulative.last().expect("non-empty");
        let prev = if k == 0 { 0.0 } else { self.cumulative[k - 1] };
        (self.cumulative[k] - prev) / total
    }
}

/// Weighted sampling over arbitrary non-negative weights, O(log n) per draw.
#[derive(Debug, Clone)]
pub struct Weighted {
    cumulative: Vec<f64>,
}

impl Weighted {
    /// Build from raw weights. Zero-weight entries are never sampled.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weighted sampler needs weights");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            assert!(
                w.is_finite() && w >= 0.0,
                "weights must be finite and non-negative"
            );
            total += w;
            cumulative.push(total);
        }
        assert!(total > 0.0, "weights must not all be zero");
        Weighted { cumulative }
    }

    /// Draw an index in `0..len`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x: f64 = rng.gen::<f64>() * total;
        self.cumulative
            .partition_point(|&c| c <= x)
            .min(self.cumulative.len() - 1)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// `true` when there are no entries (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

/// Sample from a geometric-like distribution: number of extra trials before
/// failure with success probability `p`, capped at `max`. Used for burst
/// sizes (ad calls per page, items per feed update).
pub fn sample_burst<R: Rng + ?Sized>(rng: &mut R, p: f64, max: usize) -> usize {
    let mut n = 0;
    while n < max && rng.gen::<f64>() < p {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_heavy_headed() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[500]);
        // Top-10 ranks should hold a large share under s=1.0, n=1000.
        let head: usize = counts[..10].iter().sum();
        assert!(head > 30_000, "head share was {head}");
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(50, 1.2);
        let total: f64 = (0..50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_single_rank_always_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn weighted_respects_weights() {
        let w = Weighted::new(&[0.0, 1.0, 9.0]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[w.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[2] > counts[1] * 5);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn weighted_rejects_all_zero() {
        let _ = Weighted::new(&[0.0, 0.0]);
    }

    #[test]
    fn burst_is_bounded() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(sample_burst(&mut rng, 0.9, 5) <= 5);
        }
        for _ in 0..1000 {
            assert_eq!(sample_burst(&mut rng, 0.0, 5), 0);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let z = Zipf::new(100, 1.1);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
