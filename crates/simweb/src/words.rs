//! Deterministic synthetic vocabulary generation.
//!
//! The simulated Web needs text whose statistics resemble natural language
//! closely enough for the IR pipeline (stopword removal, stemming, term
//! weighting) to behave as it would on real pages: a small set of
//! very-high-frequency function words, a large shared content vocabulary,
//! and per-topic technical vocabularies.

use rand::Rng;

/// Function words injected into generated text at high frequency. These are
/// exactly the kind of tokens Robertson term selection must learn to skip;
/// the `reef-textindex` stopword list contains all of them.
pub const STOPWORDS: [&str; 40] = [
    "the", "a", "an", "of", "to", "and", "in", "is", "it", "that", "for", "on", "was", "with",
    "as", "by", "at", "from", "this", "are", "be", "or", "not", "have", "has", "had", "but",
    "they", "you", "we", "his", "her", "its", "were", "been", "their", "which", "will", "would",
    "there",
];

const ONSETS: [&str; 16] = [
    "b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "ch", "st",
];
const VOWELS: [&str; 6] = ["a", "e", "i", "o", "u", "ai"];
const CODAS: [&str; 8] = ["", "n", "r", "s", "l", "m", "t", "k"];

/// Generate the `i`-th synthetic word of a namespace.
///
/// The mapping is a pure function of `(namespace, i)`, so vocabularies are
/// stable across runs without storing them. Words are syllabic
/// ("rukan", "stelom") and never collide across distinct `(namespace, i)`
/// pairs within the first ~49k words of a namespace because the index is
/// encoded positionally.
pub fn synth_word(namespace: u64, i: usize) -> String {
    // Mix namespace and index into a deterministic state, then emit 2-3
    // syllables driven by that state.
    let mut state = namespace
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i as u64)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9);
    let mut next = move |m: usize| {
        state ^= state >> 27;
        state = state.wrapping_mul(0x94d0_49bb_1331_11eb);
        (state >> 33) as usize % m
    };
    let syllables = 2 + (i % 2);
    let mut w = String::new();
    for _ in 0..syllables {
        w.push_str(ONSETS[next(ONSETS.len())]);
        w.push_str(VOWELS[next(VOWELS.len())]);
    }
    w.push_str(CODAS[next(CODAS.len())]);
    // Positional suffix guarantees uniqueness within the namespace.
    if i >= ONSETS.len() * VOWELS.len() {
        w.push_str(&format!("{}", i));
    }
    w
}

/// Generate `n` distinct words for a namespace.
pub fn vocabulary(namespace: u64, n: usize) -> Vec<String> {
    (0..n).map(|i| synth_word(namespace, i)).collect()
}

/// Pick a random stopword.
pub fn random_stopword<R: Rng + ?Sized>(rng: &mut R) -> &'static str {
    STOPWORDS[rng.gen_range(0..STOPWORDS.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn words_are_deterministic() {
        assert_eq!(synth_word(1, 5), synth_word(1, 5));
        assert_ne!(synth_word(1, 5), synth_word(2, 5));
    }

    #[test]
    fn vocabulary_has_no_duplicates() {
        let v = vocabulary(7, 5000);
        let set: HashSet<&String> = v.iter().collect();
        assert_eq!(set.len(), v.len());
    }

    #[test]
    fn words_are_lowercase_alphanumeric() {
        for w in vocabulary(3, 200) {
            assert!(
                w.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()),
                "{w}"
            );
            assert!(!w.is_empty());
        }
    }

    #[test]
    fn vocabularies_do_not_collide_with_stopwords() {
        let v = vocabulary(11, 2000);
        for w in &v {
            assert!(!STOPWORDS.contains(&w.as_str()), "{w} is a stopword");
        }
    }

    #[test]
    fn random_stopword_draws_from_list() {
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let w = random_stopword(&mut rng);
        assert!(STOPWORDS.contains(&w));
    }
}
