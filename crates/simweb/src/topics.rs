//! Topic model: the generative source of all text in the simulated Web.
//!
//! Each topic owns a dedicated vocabulary sampled Zipf-style, on top of a
//! shared background vocabulary and function words. Documents (pages, feed
//! items, video-story transcripts) are mixtures of topic text, background
//! text and stopwords. This construction gives the IR experiments the
//! structure they need: terms that are frequent for a *user* but rare in
//! the *background* identify the user's interest topics, which is exactly
//! the signal Robertson term selection exploits (paper §3.3).

use crate::words::{random_stopword, vocabulary, STOPWORDS};
use crate::zipf::Zipf;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a topic in a [`TopicModel`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TopicId(pub u32);

impl fmt::Display for TopicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "topic#{}", self.0)
    }
}

/// One topic: a name and a weighted private vocabulary.
///
/// The vocabulary can be two-tier: a flat *core* of equally important
/// terms (the handful of words that identify a news topic) carrying
/// `core_share` of the topical mass, and a Zipf tail. With
/// `core_share = 0` the vocabulary is pure Zipf.
#[derive(Debug, Clone)]
pub struct Topic {
    /// Human-readable synthetic name (also the first vocabulary word).
    pub name: String,
    terms: Vec<String>,
    sampler: crate::zipf::Weighted,
    core_terms: usize,
}

impl Topic {
    /// The topic's private vocabulary.
    pub fn terms(&self) -> &[String] {
        &self.terms
    }

    /// The core (tier-one) terms of the topic.
    pub fn core(&self) -> &[String] {
        &self.terms[..self.core_terms.min(self.terms.len())]
    }

    /// Draw one term from the topic's distribution.
    pub fn sample_term<R: Rng + ?Sized>(&self, rng: &mut R) -> &str {
        &self.terms[self.sampler.sample(rng)]
    }
}

/// Configuration for [`TopicModel::generate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopicModelConfig {
    /// Number of topics.
    pub topics: usize,
    /// Terms in each topic's private vocabulary.
    pub terms_per_topic: usize,
    /// Terms in the shared background vocabulary.
    pub background_terms: usize,
    /// Zipf exponent within a topic vocabulary (applies to the tail when
    /// a core tier is configured).
    pub topic_zipf: f64,
    /// Number of tier-one (core) terms per topic; 0 disables the tier.
    pub core_terms_per_topic: usize,
    /// Share of topical mass carried by the core tier (ignored when
    /// `core_terms_per_topic` is 0).
    pub core_share: f64,
    /// Zipf exponent of the background vocabulary.
    pub background_zipf: f64,
    /// Probability that a generated content token is a stopword.
    pub stopword_rate: f64,
    /// Probability that a non-stopword token is drawn from the background
    /// (rather than the document's topic mixture).
    pub background_rate: f64,
}

impl Default for TopicModelConfig {
    fn default() -> Self {
        TopicModelConfig {
            topics: 20,
            terms_per_topic: 250,
            background_terms: 2500,
            topic_zipf: 1.05,
            core_terms_per_topic: 0,
            core_share: 0.0,
            background_zipf: 1.05,
            stopword_rate: 0.35,
            background_rate: 0.45,
        }
    }
}

/// A complete topic model: topics + background vocabulary.
#[derive(Debug, Clone)]
pub struct TopicModel {
    topics: Vec<Topic>,
    background: Vec<String>,
    background_zipf: Zipf,
    config: TopicModelConfig,
}

impl TopicModel {
    /// Build a topic model deterministically from a seed namespace.
    ///
    /// # Panics
    ///
    /// Panics if the configuration declares zero topics or empty
    /// vocabularies.
    pub fn generate(config: TopicModelConfig, namespace: u64) -> Self {
        assert!(config.topics > 0, "need at least one topic");
        assert!(config.terms_per_topic > 0, "topics need terms");
        assert!(config.background_terms > 0, "background needs terms");
        let topics = (0..config.topics)
            .map(|t| {
                let terms = vocabulary(
                    namespace.wrapping_add(1000 + t as u64),
                    config.terms_per_topic,
                );
                let core = config.core_terms_per_topic.min(terms.len());
                let weights: Vec<f64> = if core == 0 || config.core_share <= 0.0 {
                    let zipf = Zipf::new(terms.len(), config.topic_zipf);
                    (0..terms.len()).map(|k| zipf.pmf(k)).collect()
                } else {
                    // Two-tier: flat core, Zipf tail.
                    let tail_len = terms.len() - core;
                    let tail_zipf = if tail_len > 0 {
                        Some(Zipf::new(tail_len, config.topic_zipf))
                    } else {
                        None
                    };
                    (0..terms.len())
                        .map(|k| {
                            if k < core {
                                config.core_share / core as f64
                            } else {
                                let tz = tail_zipf.as_ref().expect("tail exists");
                                (1.0 - config.core_share) * tz.pmf(k - core)
                            }
                        })
                        .collect()
                };
                Topic {
                    name: terms[0].clone(),
                    sampler: crate::zipf::Weighted::new(&weights),
                    core_terms: core,
                    terms,
                }
            })
            .collect();
        let background = vocabulary(namespace, config.background_terms);
        TopicModel {
            background_zipf: Zipf::new(background.len(), config.background_zipf),
            topics,
            background,
            config,
        }
    }

    /// Number of topics.
    pub fn topic_count(&self) -> usize {
        self.topics.len()
    }

    /// Access a topic.
    pub fn topic(&self, id: TopicId) -> Option<&Topic> {
        self.topics.get(id.0 as usize)
    }

    /// All topic ids.
    pub fn topic_ids(&self) -> impl Iterator<Item = TopicId> {
        (0..self.topics.len() as u32).map(TopicId)
    }

    /// The shared background vocabulary.
    pub fn background_terms(&self) -> &[String] {
        &self.background
    }

    /// The generation configuration.
    pub fn config(&self) -> &TopicModelConfig {
        &self.config
    }

    /// Draw one background term.
    pub fn sample_background<R: Rng + ?Sized>(&self, rng: &mut R) -> &str {
        &self.background[self.background_zipf.sample(rng)]
    }

    /// Generate a document of `len` tokens from a topic mixture, using the
    /// model's configured stopword and background rates.
    ///
    /// `mixture` is a list of `(topic, weight)`; weights need not sum to 1.
    /// Empty mixtures produce pure background text.
    pub fn sample_text<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        mixture: &[(TopicId, f64)],
        len: usize,
    ) -> String {
        self.sample_text_with(
            rng,
            mixture,
            len,
            self.config.stopword_rate,
            self.config.background_rate,
        )
    }

    /// Generate a document with explicit stopword/background rates.
    ///
    /// Used where a document population is noisier than Web pages — e.g.
    /// ASR transcripts of video stories, where recognition errors and
    /// studio chatter dilute the topical signal.
    pub fn sample_text_with<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        mixture: &[(TopicId, f64)],
        len: usize,
        stopword_rate: f64,
        background_rate: f64,
    ) -> String {
        let total: f64 = mixture.iter().map(|(_, w)| w.max(0.0)).sum();
        let mut out = String::with_capacity(len * 7);
        for i in 0..len {
            if i > 0 {
                out.push(' ');
            }
            if rng.gen::<f64>() < stopword_rate {
                out.push_str(random_stopword(rng));
                continue;
            }
            if total <= 0.0 || rng.gen::<f64>() < background_rate {
                out.push_str(self.sample_background(rng));
                continue;
            }
            // Pick a topic proportional to mixture weight.
            let mut x = rng.gen::<f64>() * total;
            let mut chosen = mixture[0].0;
            for (t, w) in mixture {
                let w = w.max(0.0);
                if x < w {
                    chosen = *t;
                    break;
                }
                x -= w;
            }
            match self.topic(chosen) {
                Some(topic) => out.push_str(topic.sample_term(rng)),
                None => out.push_str(self.sample_background(rng)),
            }
        }
        out
    }

    /// The set of stopwords this model injects (re-exported for consumers).
    pub fn stopwords() -> &'static [&'static str] {
        &STOPWORDS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn model() -> TopicModel {
        TopicModel::generate(TopicModelConfig::default(), 42)
    }

    #[test]
    fn topics_have_disjoint_vocabularies() {
        let m = model();
        let a: HashSet<&String> = m.topic(TopicId(0)).unwrap().terms().iter().collect();
        let b: HashSet<&String> = m.topic(TopicId(1)).unwrap().terms().iter().collect();
        assert!(a.is_disjoint(&b));
    }

    #[test]
    fn generation_is_deterministic() {
        let m1 = model();
        let m2 = model();
        assert_eq!(
            m1.topic(TopicId(3)).unwrap().terms(),
            m2.topic(TopicId(3)).unwrap().terms()
        );
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let mix = [(TopicId(0), 1.0)];
        assert_eq!(
            m1.sample_text(&mut r1, &mix, 50),
            m2.sample_text(&mut r2, &mix, 50)
        );
    }

    #[test]
    fn topical_text_contains_topic_terms() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(6);
        let text = m.sample_text(&mut rng, &[(TopicId(2), 1.0)], 400);
        let topic_terms: HashSet<&str> = m
            .topic(TopicId(2))
            .unwrap()
            .terms()
            .iter()
            .map(String::as_str)
            .collect();
        let hits = text.split(' ').filter(|w| topic_terms.contains(w)).count();
        // With stopword_rate .35 and background_rate .45, roughly a third of
        // tokens should be topical.
        assert!(hits > 60, "only {hits} topical tokens in 400");
    }

    #[test]
    fn empty_mixture_produces_background_only() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(7);
        let text = m.sample_text(&mut rng, &[], 100);
        let all_topic_terms: HashSet<&str> = m
            .topic_ids()
            .flat_map(|t| m.topic(t).unwrap().terms().iter().map(String::as_str))
            .collect();
        let hits = text
            .split(' ')
            .filter(|w| all_topic_terms.contains(w))
            .count();
        assert_eq!(hits, 0);
    }

    #[test]
    fn mixture_weights_steer_topic_share() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(8);
        let mix = [(TopicId(0), 0.9), (TopicId(1), 0.1)];
        let text = m.sample_text(&mut rng, &mix, 2000);
        let t0: HashSet<&str> = m
            .topic(TopicId(0))
            .unwrap()
            .terms()
            .iter()
            .map(String::as_str)
            .collect();
        let t1: HashSet<&str> = m
            .topic(TopicId(1))
            .unwrap()
            .terms()
            .iter()
            .map(String::as_str)
            .collect();
        let h0 = text.split(' ').filter(|w| t0.contains(w)).count();
        let h1 = text.split(' ').filter(|w| t1.contains(w)).count();
        assert!(h0 > h1 * 3, "h0={h0} h1={h1}");
    }

    #[test]
    fn sample_text_length_in_tokens() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(9);
        let text = m.sample_text(&mut rng, &[(TopicId(0), 1.0)], 25);
        assert_eq!(text.split(' ').count(), 25);
    }
}
