//! Aggregate statistics over a browsing history — the quantities the
//! paper's §3.2 reports (requests, distinct servers, ad share, single-visit
//! servers, discoverable feeds).

use crate::browse::{BrowsingHistory, RequestKind};
use crate::web::{ServerId, ServerKind, WebUniverse};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// The §3.2 table, computed from a generated history.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BrowsingStats {
    /// Total outgoing requests ("over 77000 requests").
    pub total_requests: u64,
    /// Distinct servers contacted ("2528 distinct Web servers").
    pub distinct_servers: u64,
    /// Distinct ad servers contacted ("1713 advertisement servers").
    pub ad_servers: u64,
    /// Fraction of requests that went to ad servers ("70% of the requests").
    pub ad_request_share: f64,
    /// Servers visited exactly once ("807 servers were visited only once").
    pub single_visit_servers: u64,
    /// Servers that remain after dropping ad servers and single-visit
    /// servers — the crawl-worthy set ("the remaining 906 Web servers").
    pub crawlworthy_servers: u64,
    /// Distinct feeds hosted on the crawl-worthy servers ("424 distinct RSS
    /// feeds were found").
    pub discoverable_feeds: u64,
}

impl fmt::Display for BrowsingStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total requests        : {}", self.total_requests)?;
        writeln!(f, "distinct servers      : {}", self.distinct_servers)?;
        writeln!(f, "ad servers            : {}", self.ad_servers)?;
        writeln!(
            f,
            "ad request share      : {:.1}%",
            self.ad_request_share * 100.0
        )?;
        writeln!(f, "single-visit servers  : {}", self.single_visit_servers)?;
        writeln!(f, "crawl-worthy servers  : {}", self.crawlworthy_servers)?;
        write!(f, "discoverable feeds    : {}", self.discoverable_feeds)
    }
}

/// Compute the §3.2 statistics for a history over its universe.
pub fn browsing_stats(universe: &WebUniverse, history: &BrowsingHistory) -> BrowsingStats {
    let mut visits: HashMap<ServerId, u64> = HashMap::new();
    let mut ad_requests = 0u64;
    for r in &history.requests {
        *visits.entry(r.server).or_insert(0) += 1;
        if r.kind == RequestKind::Ad {
            ad_requests += 1;
        }
    }
    let total_requests = history.requests.len() as u64;
    let distinct_servers = visits.len() as u64;
    let ad_servers = visits
        .keys()
        .filter(|s| universe.server(**s).map(|srv| srv.kind) == Some(ServerKind::Ad))
        .count() as u64;
    let single_visit_servers = visits.values().filter(|n| **n == 1).count() as u64;
    let crawlworthy: HashSet<ServerId> = visits
        .iter()
        .filter(|(sid, n)| {
            **n > 1 && universe.server(**sid).map(|srv| srv.kind) != Some(ServerKind::Ad)
        })
        .map(|(sid, _)| *sid)
        .collect();
    let discoverable_feeds = crawlworthy
        .iter()
        .filter_map(|sid| universe.server(*sid))
        .map(|srv| srv.feeds.len() as u64)
        .sum();
    BrowsingStats {
        total_requests,
        distinct_servers,
        ad_servers,
        ad_request_share: if total_requests == 0 {
            0.0
        } else {
            ad_requests as f64 / total_requests as f64
        },
        single_visit_servers,
        crawlworthy_servers: crawlworthy.len() as u64,
        discoverable_feeds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::browse::generate_history;
    use crate::config::{BrowseConfig, WebConfig};

    #[test]
    fn stats_are_internally_consistent() {
        let universe = WebUniverse::generate(WebConfig::default(), 17);
        let config = BrowseConfig {
            users: 2,
            days: 8,
            mean_page_views_per_day: 30.0,
            favourites_per_user: 40,
            ..BrowseConfig::default()
        };
        let history = generate_history(&universe, &config, 23);
        let stats = browsing_stats(&universe, &history);
        assert_eq!(stats.total_requests as usize, history.requests.len());
        assert!(stats.ad_servers <= stats.distinct_servers);
        assert!(stats.crawlworthy_servers <= stats.distinct_servers);
        assert!((0.0..=1.0).contains(&stats.ad_request_share));
        // Crawl-worthy excludes ads and single-visit servers.
        assert!(
            stats.crawlworthy_servers + stats.ad_servers
                <= stats.distinct_servers + stats.single_visit_servers
        );
    }

    #[test]
    fn empty_history_yields_zeroes() {
        let universe = WebUniverse::generate(WebConfig::default(), 17);
        let history = BrowsingHistory {
            profiles: Vec::new(),
            requests: Vec::new(),
            days: 0,
        };
        let stats = browsing_stats(&universe, &history);
        assert_eq!(stats.total_requests, 0);
        assert_eq!(stats.ad_request_share, 0.0);
    }

    #[test]
    fn display_contains_all_rows() {
        let universe = WebUniverse::generate(WebConfig::default(), 17);
        let history = generate_history(
            &universe,
            &BrowseConfig {
                users: 1,
                days: 2,
                mean_page_views_per_day: 10.0,
                favourites_per_user: 10,
                ..BrowseConfig::default()
            },
            1,
        );
        let text = browsing_stats(&universe, &history).to_string();
        for label in ["total requests", "ad servers", "discoverable feeds"] {
            assert!(text.contains(label), "missing {label}");
        }
    }
}
