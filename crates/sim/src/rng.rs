//! The harness's only randomness source: a SplitMix64 stream.
//!
//! Every random decision in a simulation — plan generation, per-message
//! fault draws, probe publisher choice — comes from one of these,
//! seeded from the run's single `u64`. No ambient entropy anywhere
//! means the whole run is a pure function of the seed.

/// SplitMix64: tiny, fast, and plenty for schedule generation. Not
/// cryptographic, deliberately — reproducibility is the only goal.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> SimRng {
        SimRng { state: seed }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Uniform draw in `lo..=hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            lo
        } else {
            lo + self.next_u64() % (hi - lo + 1)
        }
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }

    /// Uniform `f64` in `0.0..max`.
    pub fn fraction(&mut self, max: f64) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(7);
        assert!((0..100).all(|_| !rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }
}
