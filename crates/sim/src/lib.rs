//! Deterministic-simulation harness for the Reef federation.
//!
//! Runs N real broker cores — the same [`reef_pubsub::BrokerNode`] mesh
//! state machines and [`reef_attention::DurableClickStore`] WAL the TCP
//! daemon drives — against a simulated network with per-link drop,
//! duplicate, and delay faults, partitions, and broker kill/restart.
//! Virtual time, a seeded PRNG, and ordered collections make every run
//! a pure function of one `u64` seed: a failure report is a seed plus a
//! minimized step trace, and replaying the seed reproduces the run
//! byte-for-byte.
//!
//! The paper's federation (Brenna & Johansen, "Configuring Push-Based
//! Web Services", and the automatic-subscription work it carries)
//! promises availability under the exact conditions wall-clock tests
//! are worst at provoking: lost links, partitions, crashed daemons.
//! This crate provokes them thousands of times per second and checks
//! the promised invariants at every quiescent point — exactly-once
//! delivery, shortest-path convergence, no routes through dead state,
//! and WAL recovery to an acknowledged prefix.
//!
//! Entry points: [`run_seed`] for seed-driven runs (what the 200-seed
//! smoke suite calls), [`execute_plan`] with a hand-built [`SimPlan`]
//! for porting specific integration scenarios onto virtual time.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod net;
pub mod plan;
pub mod rng;
pub mod world;

pub use net::{Delivery, FaultyNet, LinkFaults, NetFaultStats};
pub use plan::{SimPlan, SimStep};
pub use rng::SimRng;
pub use world::{execute_plan, run_seed, SimFailure, SimStats};
