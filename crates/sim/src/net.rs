//! The simulated network: virtual time, per-link fault distributions,
//! deterministic delivery order.
//!
//! Messages between brokers travel through a priority queue keyed by
//! `(arrival_time, sequence)` — the sequence number breaks ties FIFO, so
//! delivery order is a pure function of the sends and the RNG draws that
//! delayed them. Faults are drawn per message from the link's
//! [`LinkFaults`]: drop, duplicate (the copy gets its own delay, so it
//! may arrive before the original — reordering falls out for free), and
//! uniform delay. Partitions drop everything crossing the boundary.
//!
//! Fault application is *phase-gated*: the driver disables drops during
//! stabilization and delivery probes ([`FaultyNet::set_lossy`]), the
//! standard fairness assumption of self-stabilizing protocols — every
//! message is delivered eventually, and the oracle checks the legal
//! state that fairness must produce. Duplicates and delays stay on
//! throughout, so the seen-cache and path-vector defenses are exercised
//! even at quiescent points.
//!
//! Two properties mirror the real transport, where peer links are TCP
//! connections:
//!
//! * **per-link FIFO** — arrival times on one directed link never go
//!   backwards relative to send order (a connection delivers in order);
//!   reordering happens *across* links, which is the kind a distributed
//!   protocol actually observes.
//! * **a drop is a broken connection** — the federation's only loss mode
//!   is a connection dying, upon which both sides tear down and
//!   reconnect. Every message drop therefore *trips* its link
//!   ([`FaultyNet::take_tripped`]); the driver responds by resetting the
//!   link through the real `remove_neighbor`/`add_mesh_neighbor` path,
//!   which regenerates the withdrawals and advertisements the drop
//!   destroyed. Packets also carry the receiver-side link handle of the
//!   connection *epoch* they were sent on, so anything still in flight
//!   across a reset or restart dies exactly as it would on a real RST.

use crate::rng::SimRng;
use reef_pubsub::{NodeId, PeerMsg};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// Per-link fault distribution, drawn once at plan time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability a message crossing the link is silently dropped
    /// (only while the net is lossy).
    pub drop_p: f64,
    /// Probability a message is duplicated; the copy draws its own
    /// delay, so it can overtake the original (reordering).
    pub dup_p: f64,
    /// Uniform per-message delay bounds, in virtual milliseconds.
    pub delay_min: u64,
    /// Upper delay bound (inclusive).
    pub delay_max: u64,
}

impl Default for LinkFaults {
    /// A clean link: no drops, no duplicates, 1 ms fixed delay.
    fn default() -> Self {
        LinkFaults {
            drop_p: 0.0,
            dup_p: 0.0,
            delay_min: 1,
            delay_max: 1,
        }
    }
}

/// One routed message in flight between two brokers. Ordered by
/// `(arrive_at, seq)` only — `seq` is unique per packet, so the order
/// is total even though [`PeerMsg`] itself has no ordering.
#[derive(Debug, Clone)]
struct Packet {
    arrive_at: u64,
    seq: u64,
    src: usize,
    dst: usize,
    /// The link handle the *receiver* knew the sender by when this was
    /// sent — the connection epoch. Stale epochs are dropped at
    /// delivery.
    handle: NodeId,
    msg: PeerMsg,
}

impl PartialEq for Packet {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl Eq for Packet {}

impl PartialOrd for Packet {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Packet {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.arrive_at, self.seq).cmp(&(other.arrive_at, other.seq))
    }
}

/// One delivered message: who sent it, who receives it, and the
/// receiver-side link handle of the connection epoch it was sent on.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// Sending broker index.
    pub src: usize,
    /// Receiving broker index.
    pub dst: usize,
    /// The receiver's link handle for the sender at send time; if the
    /// receiver's current handle differs, the connection this packet
    /// travelled on is gone and the packet must be discarded.
    pub handle: NodeId,
    /// The routed protocol message.
    pub msg: PeerMsg,
}

/// Counters of what the fault injector actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetFaultStats {
    /// Messages silently dropped by link loss.
    pub dropped: u64,
    /// Extra copies injected by duplication faults.
    pub duplicated: u64,
    /// Messages dropped at a partition boundary or a dead link.
    pub cut: u64,
}

/// The simulated message plane between brokers.
#[derive(Debug)]
pub struct FaultyNet {
    /// In-flight packets, smallest `(arrive_at, seq)` first.
    heap: BinaryHeap<Reverse<Packet>>,
    now: u64,
    seq: u64,
    /// Brokers on one side of the active partition (`None` = healed).
    partition: Option<BTreeSet<usize>>,
    /// Whether drop faults apply; duplication and delay always do.
    lossy: bool,
    /// Links (normalized pairs) that dropped a message and must be
    /// reset by the driver, like the broken TCP connections they model.
    tripped: BTreeSet<(usize, usize)>,
    /// Latest scheduled arrival per directed link: TCP delivers each
    /// connection's bytes in order, so later sends never overtake.
    last_arrival: BTreeMap<(usize, usize), u64>,
    stats: NetFaultStats,
}

impl FaultyNet {
    /// An empty network at virtual time zero.
    pub fn new() -> FaultyNet {
        FaultyNet {
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
            partition: None,
            lossy: true,
            tripped: BTreeSet::new(),
            last_arrival: BTreeMap::new(),
            stats: NetFaultStats::default(),
        }
    }

    /// Current virtual time in milliseconds.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Fault counters so far.
    pub fn stats(&self) -> NetFaultStats {
        self.stats
    }

    /// Enable or disable drop faults (stabilization and probes run
    /// drop-free; duplication and delay stay on regardless).
    pub fn set_lossy(&mut self, lossy: bool) {
        self.lossy = lossy;
    }

    /// Impose a partition: messages between `group` and its complement
    /// are dropped until [`FaultyNet::heal`].
    pub fn partition(&mut self, group: BTreeSet<usize>) {
        self.partition = Some(group);
    }

    /// Remove the active partition.
    pub fn heal(&mut self) {
        self.partition = None;
    }

    /// Whether the active partition separates `a` from `b`.
    pub fn partitioned(&self, a: usize, b: usize) -> bool {
        match &self.partition {
            Some(group) => group.contains(&a) != group.contains(&b),
            None => false,
        }
    }

    /// Links that dropped a message since the last call; the driver
    /// must reset each one (teardown + reconnect), the way the real
    /// federation recovers from a dead TCP connection.
    pub fn take_tripped(&mut self) -> BTreeSet<(usize, usize)> {
        std::mem::take(&mut self.tripped)
    }

    /// Queue `msg` from broker `src` to broker `dst` across a link with
    /// fault profile `faults`, drawing fault decisions from `rng`.
    /// `handle` is the receiver's current link handle for the sender —
    /// the connection epoch the packet belongs to.
    pub fn send(
        &mut self,
        src: usize,
        dst: usize,
        handle: NodeId,
        msg: PeerMsg,
        faults: LinkFaults,
        rng: &mut SimRng,
    ) {
        if self.partitioned(src, dst) {
            self.stats.cut += 1;
            return;
        }
        if self.lossy && rng.chance(faults.drop_p) {
            self.stats.dropped += 1;
            self.tripped.insert((src.min(dst), src.max(dst)));
            return;
        }
        let copies = if rng.chance(faults.dup_p) {
            self.stats.duplicated += 1;
            2
        } else {
            1
        };
        for _ in 0..copies {
            let delay = rng.range(faults.delay_min, faults.delay_max);
            let floor = self.last_arrival.get(&(src, dst)).copied().unwrap_or(0);
            let arrive_at = (self.now + 1 + delay).max(floor);
            self.last_arrival.insert((src, dst), arrive_at);
            let packet = Packet {
                arrive_at,
                seq: self.seq,
                src,
                dst,
                handle,
                msg: msg.clone(),
            };
            self.seq += 1;
            self.heap.push(Reverse(packet));
        }
    }

    /// Deliver the next in-flight packet, advancing virtual time to its
    /// arrival. Packets that would cross the active partition when they
    /// *arrive* are dropped — a partition cuts in-flight traffic too.
    pub fn pop(&mut self) -> Option<Delivery> {
        while let Some(Reverse(packet)) = self.heap.pop() {
            self.now = self.now.max(packet.arrive_at);
            if self.partitioned(packet.src, packet.dst) {
                self.stats.cut += 1;
                continue;
            }
            return Some(Delivery {
                src: packet.src,
                dst: packet.dst,
                handle: packet.handle,
                msg: packet.msg,
            });
        }
        None
    }

    /// Whether any packet is still in flight.
    pub fn is_idle(&self) -> bool {
        self.heap.is_empty()
    }
}

impl Default for FaultyNet {
    fn default() -> Self {
        FaultyNet::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reef_pubsub::GlobalSubId;

    fn msg(n: u64) -> PeerMsg {
        PeerMsg::UnsubFwd {
            sub: GlobalSubId(n),
        }
    }

    const H: NodeId = NodeId(0);

    #[test]
    fn reordering_happens_across_links_never_within_one() {
        let mut net = FaultyNet::new();
        let mut rng = SimRng::new(1);
        let slow = LinkFaults {
            delay_min: 10,
            delay_max: 10,
            ..LinkFaults::default()
        };
        // Directed link 0→1 is FIFO even when an early message drew a
        // long delay...
        net.send(0, 1, H, msg(1), slow, &mut rng);
        net.send(0, 1, H, msg(2), LinkFaults::default(), &mut rng);
        // ...but a message on another link overtakes freely.
        net.send(2, 1, H, msg(3), LinkFaults::default(), &mut rng);
        let got: Vec<PeerMsg> = std::iter::from_fn(|| net.pop().map(|d| d.msg)).collect();
        assert_eq!(got, vec![msg(3), msg(1), msg(2)]);
        assert!(net.is_idle());
    }

    #[test]
    fn partition_cuts_in_flight_packets() {
        let mut net = FaultyNet::new();
        let mut rng = SimRng::new(1);
        net.send(0, 1, H, msg(1), LinkFaults::default(), &mut rng);
        net.partition([0].into_iter().collect());
        assert!(net.pop().is_none());
        assert_eq!(net.stats().cut, 1);
        net.heal();
        net.send(0, 1, H, msg(2), LinkFaults::default(), &mut rng);
        assert!(net.pop().is_some());
    }

    #[test]
    fn drops_only_apply_while_lossy_and_trip_the_link() {
        let always_drop = LinkFaults {
            drop_p: 1.0,
            ..LinkFaults::default()
        };
        let mut net = FaultyNet::new();
        let mut rng = SimRng::new(1);
        net.send(1, 0, H, msg(1), always_drop, &mut rng);
        assert!(net.pop().is_none());
        assert_eq!(
            net.take_tripped().into_iter().collect::<Vec<_>>(),
            vec![(0, 1)]
        );
        assert!(net.take_tripped().is_empty());
        net.set_lossy(false);
        net.send(1, 0, H, msg(2), always_drop, &mut rng);
        assert!(net.pop().is_some());
        assert!(net.take_tripped().is_empty());
    }
}
