//! The simulated federation: N real broker cores, one virtual clock,
//! four oracles, and a trace minimizer.
//!
//! Each simulated broker is a real [`BrokerNode`] in mesh mode plus a
//! real [`DurableClickStore`] persisting to its own on-disk directory —
//! the exact state machines the TCP federation drives, with every
//! ambient effect (time, randomness, sockets) replaced by the harness.
//! Killing a broker drops its in-memory state and optionally shears
//! bytes off its last WAL segment; restarting replays the WAL bytes
//! through the real recovery path and checks the result against the
//! acknowledged upload history.
//!
//! # Oracles
//!
//! Checked at every quiescent point (after each plan step settles and
//! stabilizes):
//!
//! 1. **exactly-once delivery** — a probe event published at a random
//!    live broker reaches every matching subscription on every live,
//!    reachable broker exactly once, and no one else, with duplication
//!    faults still active;
//! 2. **convergence** — every broker's fast path to every reachable
//!    subscription has exactly the graph's shortest-path length;
//! 3. **no dead state** — no retained route (fast path or alternate)
//!    crosses a dead link, names a dead broker, or targets a retired
//!    subscription;
//! 4. **acknowledged prefix** — a restarted broker's recovered store is
//!    a batch-boundary prefix of its acknowledged uploads, and the whole
//!    history when the kill was clean.
//!
//! On failure, [`run_seed`] re-executes subsets of the plan's step list
//! (ddmin-style — every step is a tolerant no-op when its precondition
//! is gone, so any subset is a valid plan) and reports the seed plus the
//! minimized trace.

use crate::net::{FaultyNet, NetFaultStats};
use crate::plan::{SimPlan, SimStep};
use crate::rng::SimRng;
use reef_attention::{Click, ClickBatch, DurableClickStore, PersistConfig};
use reef_pubsub::{
    BrokerNode, ClientId, Event, EventId, Filter, GlobalSubId, NodeId, PublishedEvent,
};
use reef_simweb::UserId;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Delivered-message budget per settle phase; exceeding it means the
/// protocol is flooding (itself an oracle failure, not a hang).
const SETTLE_BUDGET: u64 = 200_000;

/// User id reserved for forged-cookie clicks; it must never appear in
/// any recovered store.
const FORGED_USER: UserId = UserId(u32::MAX);

/// WAL segment rotation threshold — tiny, so every run exercises
/// multi-segment recovery.
const SEGMENT_BYTES: u64 = 512;

/// Snapshot cadence in batches — small, so compaction runs too.
const SNAPSHOT_EVERY: u64 = 3;

/// Counters summarizing one successful simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Plan steps executed.
    pub steps: u64,
    /// Probe events published and verified exactly-once.
    pub probes: u64,
    /// Click batches acknowledged across all brokers.
    pub uploads: u64,
    /// Broker restarts that passed WAL recovery checks.
    pub restarts: u64,
    /// Link resets forced by drop faults (broken-connection model).
    pub link_resets: u64,
    /// What the fault injector did at the network layer.
    pub net: NetFaultStats,
}

/// A failed run: the seed to replay it and the minimized step trace
/// that still reproduces a failure.
#[derive(Debug, Clone)]
pub struct SimFailure {
    /// Seed that produced the failing plan.
    pub seed: u64,
    /// The first oracle violation, with step context.
    pub reason: String,
    /// ddmin-reduced step list that still fails under this seed.
    pub minimized: Vec<SimStep>,
}

impl std::fmt::Display for SimFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "simulation failed for seed {}", self.seed)?;
        writeln!(f, "  reason: {}", self.reason)?;
        writeln!(f, "  minimized trace ({} steps):", self.minimized.len())?;
        for step in &self.minimized {
            writeln!(f, "    {step:?}")?;
        }
        write!(
            f,
            "  replay: reef_sim::run_seed({}) or REEF_SIM_SEED={} cargo test -p reef-sim",
            self.seed, self.seed
        )
    }
}

/// Run the full derived plan for `seed`; on oracle failure, minimize
/// the step trace and return it with the seed.
///
/// # Errors
///
/// Returns [`SimFailure`] when any oracle is violated; the same seed
/// deterministically reproduces the identical failure.
pub fn run_seed(seed: u64) -> Result<SimStats, SimFailure> {
    let plan = SimPlan::from_seed(seed);
    match execute_plan(&plan) {
        Ok(stats) => Ok(stats),
        Err(reason) => Err(SimFailure {
            seed,
            reason,
            minimized: minimize(&plan),
        }),
    }
}

/// Execute one plan to completion, checking every oracle at every
/// quiescent point.
///
/// # Errors
///
/// Returns a human-readable description of the first oracle violation
/// (or I/O failure in the persistence layer), prefixed with the step
/// that triggered it.
pub fn execute_plan(plan: &SimPlan) -> Result<SimStats, String> {
    let mut world = World::new(plan)?;
    world.quiesce_and_check("initial convergence")?;
    for (idx, step) in plan.steps.iter().enumerate() {
        let ctx = format!("step {idx} {step:?}");
        world.net.set_lossy(true);
        world.apply(step).map_err(|e| format!("{ctx}: {e}"))?;
        world
            .quiesce_and_check(&ctx)
            .map_err(|e| format!("{ctx}: {e}"))?;
        world.stats.steps += 1;
    }
    world.stats.net = world.net.stats();
    Ok(world.stats)
}

/// ddmin-style reduction: repeatedly drop chunks of the step list as
/// long as some subset still fails. Any failure counts — the goal is
/// the smallest trace worth reading, not the identical symptom.
fn minimize(plan: &SimPlan) -> Vec<SimStep> {
    let fails = |steps: &[SimStep]| {
        let candidate = SimPlan {
            steps: steps.to_vec(),
            ..plan.clone()
        };
        execute_plan(&candidate).is_err()
    };
    let mut steps = plan.steps.clone();
    if fails(&[]) {
        return Vec::new();
    }
    let mut n = 2usize;
    while steps.len() >= 2 {
        let chunk = steps.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < steps.len() {
            let end = (start + chunk).min(steps.len());
            let mut candidate = steps[..start].to_vec();
            candidate.extend_from_slice(&steps[end..]);
            if fails(&candidate) {
                steps = candidate;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunk <= 1 {
                break;
            }
            n = (n * 2).min(steps.len());
        }
    }
    steps
}

/// A link's administrative and connection state.
#[derive(Debug)]
struct LinkState {
    /// Administratively up (a `LinkDown` step flips this off).
    up: bool,
    /// Fault profile drawn at plan time.
    faults: crate::net::LinkFaults,
    /// Live connection epoch: `(handle at a for b, handle at b for a)`
    /// for the normalized key `(a, b)`; `None` while disconnected.
    conn: Option<(NodeId, NodeId)>,
}

/// One simulated broker: the real routing core plus the real durable
/// store, and the bookkeeping the oracles need.
struct SimNode {
    /// The routing state machine; `None` while crashed.
    broker: Option<BrokerNode>,
    /// This node's link handles → peer broker index.
    peer_of: BTreeMap<NodeId, usize>,
    /// Live local subscriptions: `(sub, client, topic)`.
    subs: Vec<(GlobalSubId, ClientId, &'static str)>,
    /// The durable click store; `None` while crashed.
    store: Option<DurableClickStore>,
    /// Data directory holding this broker's WAL across kills.
    data_dir: PathBuf,
    /// Acknowledged upload batches (accepted clicks only), in order.
    acked: Vec<Vec<Click>>,
    /// Monotonic click tick, unique across this broker's uploads.
    next_tick: u64,
    /// Bytes sheared off the WAL tail by the last kill (0 = clean).
    last_kill_torn: u16,
}

impl SimNode {
    fn alive(&self) -> bool {
        self.broker.is_some()
    }
}

/// The whole simulated federation.
struct World {
    rng: SimRng,
    net: FaultyNet,
    nodes: Vec<SimNode>,
    /// Normalized `(a, b)` with `a < b` → link state.
    topo: BTreeMap<(usize, usize), LinkState>,
    next_node_id: u32,
    next_sub: u64,
    next_event: u64,
    /// Deliveries observed during the current probe:
    /// `(broker, client, event id) → count`.
    probe_log: BTreeMap<(usize, u64, u64), u64>,
    stats: SimStats,
    base_dir: PathBuf,
}

impl Drop for World {
    fn drop(&mut self) {
        // Stores hold open files in `base_dir`; close them first.
        for node in &mut self.nodes {
            node.store = None;
        }
        let _ = fs::remove_dir_all(&self.base_dir);
    }
}

impl World {
    fn new(plan: &SimPlan) -> Result<World, String> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT_DIR: AtomicU64 = AtomicU64::new(0);
        let base_dir = std::env::temp_dir().join(format!(
            "reef-sim-{}-{}",
            std::process::id(),
            NEXT_DIR.fetch_add(1, Ordering::Relaxed)
        ));
        let mut world = World {
            rng: SimRng::new(plan.seed),
            net: FaultyNet::new(),
            nodes: Vec::new(),
            topo: BTreeMap::new(),
            next_node_id: 0,
            next_sub: 0,
            next_event: 0,
            probe_log: BTreeMap::new(),
            stats: SimStats::default(),
            base_dir,
        };
        for i in 0..plan.brokers {
            let data_dir = world.base_dir.join(format!("broker-{i}"));
            let store = DurableClickStore::open(persist_config(&data_dir))
                .map_err(|e| format!("broker {i}: open store: {e}"))?;
            world.nodes.push(SimNode {
                broker: Some(BrokerNode::new_mesh(i as u32)),
                peer_of: BTreeMap::new(),
                subs: Vec::new(),
                store: Some(store),
                data_dir,
                acked: Vec::new(),
                next_tick: 0,
                last_kill_torn: 0,
            });
            world.subscribe_locals(i);
        }
        for &(a, b, faults) in &plan.links {
            if a == b || a.max(b) >= plan.brokers {
                return Err(format!("plan names an invalid link ({a}, {b})"));
            }
            world.topo.insert(
                (a.min(b), a.max(b)),
                LinkState {
                    up: true,
                    faults,
                    conn: None,
                },
            );
        }
        let keys: Vec<(usize, usize)> = world.topo.keys().copied().collect();
        for (a, b) in keys {
            world.connect(a, b);
        }
        Ok(world)
    }

    /// Issue this broker's standing subscriptions: every broker follows
    /// `probe`, even-indexed brokers also follow `alt` (so the two probe
    /// topics exercise full and partial fan-out).
    fn subscribe_locals(&mut self, i: usize) {
        let mut wanted: Vec<&'static str> = vec!["probe"];
        if i.is_multiple_of(2) {
            wanted.push("alt");
        }
        self.nodes[i].subs.clear();
        for topic in wanted {
            let sub = GlobalSubId(self.next_sub);
            let client = ClientId(self.next_sub);
            self.next_sub += 1;
            self.nodes[i].subs.push((sub, client, topic));
            let out = self.nodes[i]
                .broker
                .as_mut()
                .expect("subscribing on a live broker")
                .subscribe_local(sub, client, Filter::topic(topic));
            self.route(i, out);
        }
    }

    /// Feed a broker's outgoing messages into the network, resolving
    /// each link handle to the peer, the link's fault profile, and the
    /// receiver-side handle of the current connection epoch.
    fn route(&mut self, src: usize, msgs: Vec<(NodeId, PeerMsg)>) {
        for (handle, msg) in msgs {
            let Some(&dst) = self.nodes[src].peer_of.get(&handle) else {
                continue;
            };
            let key = (src.min(dst), src.max(dst));
            let Some(link) = self.topo.get(&key) else {
                continue;
            };
            let Some((ha, hb)) = link.conn else {
                continue;
            };
            let recv_handle = if src == key.0 { hb } else { ha };
            self.net
                .send(src, dst, recv_handle, msg, link.faults, &mut self.rng);
        }
    }

    /// Drain the network to quiescence, feeding every delivery through
    /// the real `BrokerNode::handle` and routing its follow-ups.
    fn settle(&mut self) -> Result<(), String> {
        for _ in 0..SETTLE_BUDGET {
            let Some(d) = self.net.pop() else {
                return Ok(());
            };
            let node = &mut self.nodes[d.dst];
            let Some(broker) = node.broker.as_mut() else {
                continue; // delivered to a crashed broker: lost, as on a dead socket
            };
            if node.peer_of.get(&d.handle) != Some(&d.src) {
                continue; // stale connection epoch: the link was reset in flight
            }
            let out = broker.handle(d.handle, d.msg);
            for (client, event) in &out.deliveries {
                *self
                    .probe_log
                    .entry((d.dst, client.0, event.id.0))
                    .or_insert(0) += 1;
            }
            self.route(d.dst, out.messages);
        }
        Err(format!(
            "settle exceeded {SETTLE_BUDGET} deliveries: the protocol is flooding"
        ))
    }

    /// Establish the connection on link `(a, b)` if it is up, both ends
    /// are alive, and no partition separates them. Idempotent.
    fn connect(&mut self, a: usize, b: usize) {
        let key = (a.min(b), a.max(b));
        if self.net.partitioned(key.0, key.1)
            || !self.nodes[key.0].alive()
            || !self.nodes[key.1].alive()
        {
            return;
        }
        let Some(link) = self.topo.get_mut(&key) else {
            return;
        };
        if !link.up || link.conn.is_some() {
            return;
        }
        let ha = NodeId(self.next_node_id);
        let hb = NodeId(self.next_node_id + 1);
        self.next_node_id += 2;
        link.conn = Some((ha, hb));
        self.nodes[key.0].peer_of.insert(ha, key.1);
        self.nodes[key.1].peer_of.insert(hb, key.0);
        for (idx, handle, peer) in [(key.0, ha, key.1 as u32), (key.1, hb, key.0 as u32)] {
            let out = self.nodes[idx]
                .broker
                .as_mut()
                .expect("connect checked liveness")
                .add_mesh_neighbor(handle, peer);
            self.route(idx, out);
        }
    }

    /// Tear down the connection on link `(a, b)`, if any. Both
    /// surviving ends run the real `remove_neighbor` teardown (route
    /// withdrawal + re-advertisement); a broker named in `dying` is
    /// crashing and sends nothing.
    fn disconnect(&mut self, a: usize, b: usize, dying: Option<usize>) {
        let key = (a.min(b), a.max(b));
        let Some(link) = self.topo.get_mut(&key) else {
            return;
        };
        let Some((ha, hb)) = link.conn.take() else {
            return;
        };
        self.nodes[key.0].peer_of.remove(&ha);
        self.nodes[key.1].peer_of.remove(&hb);
        for (idx, handle) in [(key.0, ha), (key.1, hb)] {
            if dying == Some(idx) {
                continue;
            }
            if let Some(broker) = self.nodes[idx].broker.as_mut() {
                let out = broker.remove_neighbor(handle);
                self.route(idx, out);
            }
        }
    }

    /// Reset every link that dropped a message — the broken-connection
    /// model: a drop is a dead TCP connection, and reconnecting through
    /// the real teardown/handshake path regenerates the state the drop
    /// destroyed. Resets can trip further links while drops stay
    /// enabled, so after a bounded number of lossy rounds the cascade is
    /// finished loss-free (the fairness assumption).
    fn reset_tripped(&mut self) -> Result<(), String> {
        for round in 0..16 {
            if round == 12 {
                self.net.set_lossy(false);
            }
            let tripped = self.net.take_tripped();
            if tripped.is_empty() {
                return Ok(());
            }
            for (a, b) in tripped {
                self.stats.link_resets += 1;
                self.disconnect(a, b, None);
                self.connect(a, b);
            }
            self.settle()?;
        }
        Err("link-reset cascade failed to terminate".into())
    }

    /// Drive every live broker's periodic refresh until routing tables
    /// reach a fixpoint (two identical consecutive quiescent snapshots),
    /// loss-free. Duplication and delay faults stay on.
    fn stabilize(&mut self) -> Result<(), String> {
        self.net.set_lossy(false);
        type RouteSnapshot = Vec<Vec<(GlobalSubId, NodeId, Vec<u32>)>>;
        let mut prev: Option<RouteSnapshot> = None;
        for _ in 0..(2 * self.nodes.len() + 4) {
            for i in 0..self.nodes.len() {
                if let Some(broker) = self.nodes[i].broker.as_mut() {
                    let out = broker.refresh();
                    self.route(i, out);
                }
            }
            self.settle()?;
            let snap: Vec<Vec<(GlobalSubId, NodeId, Vec<u32>)>> = self
                .nodes
                .iter()
                .map(|n| {
                    n.broker
                        .as_ref()
                        .map_or_else(Vec::new, BrokerNode::mesh_route_table)
                })
                .collect();
            if prev.as_ref() == Some(&snap) {
                return Ok(());
            }
            prev = Some(snap);
        }
        Err("routing tables did not reach a fixpoint within the refresh bound".into())
    }

    /// Settle, reset tripped links, stabilize, then run the routing and
    /// delivery oracles — the full quiescent-point check.
    fn quiesce_and_check(&mut self, ctx: &str) -> Result<(), String> {
        self.settle()?;
        self.reset_tripped()?;
        self.stabilize()?;
        self.check_routing()
            .map_err(|e| format!("routing oracle after {ctx}: {e}"))?;
        self.probe()
            .map_err(|e| format!("delivery oracle after {ctx}: {e}"))
    }

    /// Hop distances from `start` over live, connected links.
    fn distances(&self, start: usize) -> BTreeMap<usize, usize> {
        let mut dist = BTreeMap::new();
        if !self.nodes[start].alive() {
            return dist;
        }
        dist.insert(start, 0);
        let mut frontier = vec![start];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &n in &frontier {
                for (&(a, b), link) in &self.topo {
                    if link.conn.is_none() || (a != n && b != n) {
                        continue;
                    }
                    let other = if a == n { b } else { a };
                    if self.nodes[other].alive() && !dist.contains_key(&other) {
                        dist.insert(other, dist[&n] + 1);
                        next.push(other);
                    }
                }
            }
            frontier = next;
        }
        dist
    }

    /// Oracles 2 and 3: every retained route is structurally live, and
    /// every fast path is exactly as long as the graph's shortest path
    /// to the subscription's owner — no more, no less, and complete.
    fn check_routing(&self) -> Result<(), String> {
        let owners: BTreeMap<GlobalSubId, usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive())
            .flat_map(|(i, n)| n.subs.iter().map(move |&(sub, _, _)| (sub, i)))
            .collect();
        for (i, node) in self.nodes.iter().enumerate() {
            if !node.alive() {
                continue;
            }
            let broker = node.broker.as_ref().expect("checked alive");
            let dist = self.distances(i);
            for (sub, link, path) in broker.mesh_route_table() {
                if !node.peer_of.contains_key(&link) {
                    return Err(format!(
                        "broker {i} retains a route for {sub:?} via dead link {link:?}"
                    ));
                }
                let Some(&owner) = owners.get(&sub) else {
                    return Err(format!(
                        "broker {i} retains a route for retired subscription {sub:?} (path {path:?})"
                    ));
                };
                if path.first() != Some(&(owner as u32)) {
                    return Err(format!(
                        "broker {i}: route for {sub:?} has path {path:?}, expected origin {owner}"
                    ));
                }
                for &hop in &path {
                    let hop = hop as usize;
                    if hop >= self.nodes.len() || !self.nodes[hop].alive() {
                        return Err(format!(
                            "broker {i}: route for {sub:?} crosses dead broker {hop} (path {path:?})"
                        ));
                    }
                }
            }
            let best: BTreeMap<GlobalSubId, Vec<u32>> = broker
                .mesh_best_routes()
                .into_iter()
                .map(|(sub, _, path)| (sub, path))
                .collect();
            for (&sub, &owner) in &owners {
                if owner == i {
                    continue;
                }
                match (best.get(&sub), dist.get(&owner)) {
                    (Some(path), Some(&d)) => {
                        if path.len() != d {
                            return Err(format!(
                                "broker {i}: fast path to {sub:?} (owner {owner}) is {path:?}, \
                                 expected length {d}"
                            ));
                        }
                    }
                    (Some(path), None) => {
                        return Err(format!(
                            "broker {i}: retains fast path {path:?} to {sub:?} on unreachable \
                             broker {owner}"
                        ));
                    }
                    (None, Some(_)) => {
                        return Err(format!(
                            "broker {i}: no route to {sub:?} on reachable broker {owner}"
                        ));
                    }
                    (None, None) => {}
                }
            }
        }
        Ok(())
    }

    /// Oracle 1: publish one probe per topic from a random live broker
    /// and demand exactly-once delivery on every reachable matching
    /// subscription, zero everywhere else — with duplication and delay
    /// faults still live.
    fn probe(&mut self) -> Result<(), String> {
        let live: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].alive())
            .collect();
        let Some(&publisher) = live.get(self.rng.below(live.len())).or(live.first()) else {
            return Ok(());
        };
        let reachable = self.distances(publisher);
        for topic in ["probe", "alt"] {
            let id = EventId(((publisher as u64) << 32) | self.next_event);
            self.next_event += 1;
            let event = PublishedEvent {
                id,
                published_at: self.net.now(),
                event: Event::topical(topic, "sim probe"),
            };
            self.probe_log.clear();
            let out = self.nodes[publisher]
                .broker
                .as_mut()
                .expect("publisher is live")
                .publish_local(event);
            for (client, ev) in &out.deliveries {
                *self
                    .probe_log
                    .entry((publisher, client.0, ev.id.0))
                    .or_insert(0) += 1;
            }
            self.route(publisher, out.messages);
            self.settle()?;
            let mut expected: BTreeMap<(usize, u64, u64), u64> = BTreeMap::new();
            for &i in &live {
                if !reachable.contains_key(&i) {
                    continue;
                }
                for &(_, client, sub_topic) in &self.nodes[i].subs {
                    if sub_topic == topic {
                        expected.insert((i, client.0, id.0), 1);
                    }
                }
            }
            if self.probe_log != expected {
                return Err(format!(
                    "probe {id:?} on topic {topic:?} from broker {publisher}: \
                     deliveries {:?} != expected {:?}",
                    self.probe_log, expected
                ));
            }
            self.stats.probes += 1;
        }
        Ok(())
    }

    /// Apply one plan step. Every step tolerates a world where its
    /// precondition is gone (restart of a live broker, downing a dead
    /// link…) so the minimizer can replay arbitrary subsets.
    fn apply(&mut self, step: &SimStep) -> Result<(), String> {
        match step {
            SimStep::LinkDown { a, b } => {
                if let Some(link) = self.topo.get_mut(&(*a.min(b), *a.max(b))) {
                    link.up = false;
                }
                self.disconnect(*a, *b, None);
            }
            SimStep::LinkUp { a, b, faults } => {
                if let Some(link) = self.topo.get_mut(&(*a.min(b), *a.max(b))) {
                    link.up = true;
                    link.faults = *faults;
                }
                self.connect(*a, *b);
            }
            SimStep::Partition { group } => {
                self.net.partition(group.clone());
                let keys: Vec<(usize, usize)> = self.topo.keys().copied().collect();
                for (a, b) in keys {
                    if self.net.partitioned(a, b) {
                        self.disconnect(a, b, None);
                    }
                }
            }
            SimStep::Heal => {
                self.net.heal();
                let keys: Vec<(usize, usize)> = self.topo.keys().copied().collect();
                for (a, b) in keys {
                    self.connect(a, b);
                }
            }
            SimStep::Kill { broker, torn } => self.kill(*broker, *torn)?,
            SimStep::Restart { broker } => self.restart(*broker)?,
            SimStep::ClickUpload { broker, forged } => self.upload(*broker, *forged)?,
        }
        Ok(())
    }

    /// Crash a broker: neighbors observe the links die, volatile state
    /// vanishes, and `torn` bytes are sheared off the WAL tail (a crash
    /// mid-write, past what the flush-then-ack discipline covers).
    fn kill(&mut self, broker: usize, torn: u16) -> Result<(), String> {
        if !self.nodes[broker].alive() {
            return Ok(());
        }
        let keys: Vec<(usize, usize)> = self.topo.keys().copied().collect();
        for (a, b) in keys {
            if a == broker || b == broker {
                self.disconnect(a, b, Some(broker));
            }
        }
        let node = &mut self.nodes[broker];
        node.broker = None;
        node.store = None; // closes the WAL file handles
        node.subs.clear();
        node.peer_of.clear();
        node.last_kill_torn = torn;
        if torn > 0 {
            tear_wal_tail(&node.data_dir, torn)
                .map_err(|e| format!("broker {broker}: tearing WAL tail: {e}"))?;
        }
        Ok(())
    }

    /// Restart a crashed broker: run real WAL recovery over whatever
    /// bytes the kill left, check oracle 4, rejoin the mesh, and
    /// re-issue local subscriptions under fresh ids.
    fn restart(&mut self, broker: usize) -> Result<(), String> {
        if self.nodes[broker].alive() {
            return Ok(());
        }
        let node = &mut self.nodes[broker];
        let store = DurableClickStore::open(persist_config(&node.data_dir))
            .map_err(|e| format!("broker {broker}: recovery: {e}"))?;
        let recovered = store.clicks_of(UserId(broker as u32));
        if !store.clicks_of(FORGED_USER).is_empty() {
            return Err(format!(
                "broker {broker}: recovery resurrected forged-cookie clicks"
            ));
        }
        let mut consumed = 0usize;
        let mut batches_kept = 0usize;
        for batch in &node.acked {
            let end = consumed + batch.len();
            if recovered.len() >= end && recovered[consumed..end] == batch[..] {
                consumed = end;
                batches_kept += 1;
            } else {
                break;
            }
        }
        if consumed != recovered.len() {
            return Err(format!(
                "broker {broker}: recovered store is not a batch prefix of the acked history \
                 ({} recovered clicks, {} match acked batches)",
                recovered.len(),
                consumed
            ));
        }
        if node.last_kill_torn == 0 && batches_kept != node.acked.len() {
            return Err(format!(
                "broker {broker}: clean kill lost acked batches ({batches_kept} of {} recovered)",
                node.acked.len()
            ));
        }
        node.acked.truncate(batches_kept);
        node.store = Some(store);
        node.broker = Some(BrokerNode::new_mesh(broker as u32));
        self.stats.restarts += 1;
        self.subscribe_locals(broker);
        let keys: Vec<(usize, usize)> = self.topo.keys().copied().collect();
        for (a, b) in keys {
            if a == broker || b == broker {
                self.connect(a, b);
            }
        }
        Ok(())
    }

    /// Upload one click batch to a broker's durable store; when
    /// `forged` is set the batch carries one wrong-cookie click the
    /// store must reject without poisoning the rest.
    fn upload(&mut self, broker: usize, forged: bool) -> Result<(), String> {
        if self.nodes[broker].store.is_none() {
            return Ok(());
        }
        let count = 1 + self.rng.below(3);
        let node = &mut self.nodes[broker];
        let user = UserId(broker as u32);
        let valid: Vec<Click> = (0..count)
            .map(|_| {
                let tick = node.next_tick;
                node.next_tick += 1;
                Click {
                    user,
                    day: (tick / 10) as u32,
                    tick,
                    url: format!("http://site{broker}.example/p{tick}"),
                    referrer: tick
                        .is_multiple_of(2)
                        .then(|| format!("http://ref{broker}.example/")),
                }
            })
            .collect();
        let mut clicks = valid.clone();
        if forged {
            clicks.push(Click {
                user: FORGED_USER,
                day: 0,
                tick: node.next_tick,
                url: "http://forged.example/".into(),
                referrer: None,
            });
        }
        let receipt = node
            .store
            .as_mut()
            .expect("checked above")
            .ingest_upload(ClickBatch { user, clicks })
            .map_err(|e| format!("broker {broker}: upload: {e}"))?;
        if receipt.accepted != valid.len() as u64 || receipt.rejected != u64::from(forged) {
            return Err(format!(
                "broker {broker}: upload receipt {receipt:?} does not match the batch \
                 ({} valid, forged={forged})",
                valid.len()
            ));
        }
        node.acked.push(valid);
        self.stats.uploads += 1;
        Ok(())
    }
}

use reef_pubsub::PeerMsg;

fn persist_config(dir: &Path) -> PersistConfig {
    PersistConfig {
        dir: dir.to_path_buf(),
        segment_bytes: SEGMENT_BYTES,
        snapshot_every: SNAPSHOT_EVERY,
    }
}

/// Shear `torn` bytes off the end of the newest WAL segment, simulating
/// a crash that outran the OS flush.
fn tear_wal_tail(dir: &Path, torn: u16) -> std::io::Result<()> {
    let mut segments: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .collect();
    segments.sort();
    if let Some(path) = segments.pop() {
        let len = fs::metadata(&path)?.len();
        fs::OpenOptions::new()
            .write(true)
            .open(&path)?
            .set_len(len.saturating_sub(u64::from(torn)))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_ring_converges_and_delivers() {
        let plan = SimPlan {
            seed: 0,
            brokers: 3,
            links: vec![
                (0, 1, crate::net::LinkFaults::default()),
                (1, 2, crate::net::LinkFaults::default()),
                (0, 2, crate::net::LinkFaults::default()),
            ],
            steps: vec![
                SimStep::ClickUpload {
                    broker: 1,
                    forged: false,
                },
                SimStep::LinkDown { a: 0, b: 1 },
                SimStep::LinkUp {
                    a: 0,
                    b: 1,
                    faults: crate::net::LinkFaults::default(),
                },
            ],
        };
        let stats = execute_plan(&plan).expect("clean plan passes all oracles");
        assert_eq!(stats.steps, 3);
        assert_eq!(stats.uploads, 1);
        assert!(stats.probes >= 8, "initial + one per step, two topics");
    }

    #[test]
    fn kill_restart_recovers_acked_uploads() {
        let plan = SimPlan {
            seed: 0,
            brokers: 3,
            links: vec![
                (0, 1, crate::net::LinkFaults::default()),
                (1, 2, crate::net::LinkFaults::default()),
            ],
            steps: vec![
                SimStep::ClickUpload {
                    broker: 2,
                    forged: true,
                },
                SimStep::ClickUpload {
                    broker: 2,
                    forged: false,
                },
                SimStep::Kill { broker: 2, torn: 0 },
                SimStep::Restart { broker: 2 },
                SimStep::ClickUpload {
                    broker: 2,
                    forged: false,
                },
            ],
        };
        let stats = execute_plan(&plan).expect("kill/restart passes oracles");
        assert_eq!(stats.restarts, 1);
        assert_eq!(stats.uploads, 3);
    }

    #[test]
    fn seeded_runs_are_replayable() {
        for seed in [3, 17] {
            let a = run_seed(seed).expect("seed passes");
            let b = run_seed(seed).expect("same seed still passes");
            assert_eq!(a, b, "seed {seed} must replay identically");
        }
    }
}
