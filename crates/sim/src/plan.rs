//! Simulation plans: the event vocabulary and the seeded generator.
//!
//! A [`SimPlan`] is everything a run needs — broker count, initial
//! topology with per-link fault profiles, and an ordered step list.
//! [`SimPlan::from_seed`] derives all of it from a single `u64`, so a
//! failing run is reported (and replayed) as just that seed. Explicit
//! plans can also be built by hand to port wall-clock integration
//! scenarios (ring failover, crash kill-points) onto virtual time.
//!
//! Every step is *tolerant*: applying it to a world where its
//! precondition no longer holds (killing a dead broker, downing an
//! absent link) is a no-op. That property is what lets the trace
//! minimizer replay arbitrary subsets of a failing plan.

use crate::net::LinkFaults;
use crate::rng::SimRng;
use std::collections::BTreeSet;

/// One scheduled perturbation or workload action.
#[derive(Debug, Clone, PartialEq)]
pub enum SimStep {
    /// Take the link between two brokers down (keepalive-style
    /// teardown: both ends withdraw routes immediately).
    LinkDown {
        /// One endpoint (broker index).
        a: usize,
        /// The other endpoint.
        b: usize,
    },
    /// Bring a link up (or add a brand-new one) with a fault profile.
    LinkUp {
        /// One endpoint (broker index).
        a: usize,
        /// The other endpoint.
        b: usize,
        /// Fault distribution for the revived link.
        faults: LinkFaults,
    },
    /// Partition the network: `group` vs everyone else. Links crossing
    /// the boundary are torn down as keepalives would tear them down.
    Partition {
        /// Brokers on one side of the split.
        group: BTreeSet<usize>,
    },
    /// Heal the partition and re-establish every administratively-up
    /// link.
    Heal,
    /// Crash a broker: neighbors see the link die, volatile state is
    /// lost, and optionally the tail of its last WAL segment is torn
    /// off (simulating a crash mid-write).
    Kill {
        /// Broker index to crash.
        broker: usize,
        /// Bytes to shear off the final WAL segment (0 = clean kill).
        torn: u16,
    },
    /// Restart a crashed broker: replay its WAL through real recovery,
    /// check the recovered store against the acked history, rejoin the
    /// mesh, and re-issue local subscriptions.
    Restart {
        /// Broker index to revive.
        broker: usize,
    },
    /// Upload a click batch to a broker's durable store; `forged`
    /// injects a click with a mismatched user cookie, which the store
    /// must reject without poisoning the rest of the batch.
    ClickUpload {
        /// Broker index receiving the upload.
        broker: usize,
        /// Whether to include a forged-cookie click.
        forged: bool,
    },
}

/// A complete, replayable description of one simulation run.
#[derive(Debug, Clone)]
pub struct SimPlan {
    /// Seed the plan was derived from (0 for hand-built plans).
    pub seed: u64,
    /// Number of broker nodes, indexed `0..brokers`.
    pub brokers: usize,
    /// Initial links as `(a, b, faults)` with `a < b`.
    pub links: Vec<(usize, usize, LinkFaults)>,
    /// Ordered perturbations applied after initial convergence.
    pub steps: Vec<SimStep>,
}

impl SimPlan {
    /// Derive a full plan — topology, fault profiles, step schedule —
    /// from `seed`. The same seed always yields the same plan.
    pub fn from_seed(seed: u64) -> SimPlan {
        // A derived stream, so plan-shape draws never interleave with
        // the execution stream's fault draws.
        let mut rng = SimRng::new(seed ^ 0xA5A5_5A5A_F00D_CAFE);
        let brokers = 3 + rng.below(3); // 3..=5
        let mut links = Vec::new();
        // Ring backbone: every broker reachable even before chords.
        for a in 0..brokers {
            let b = (a + 1) % brokers;
            let (a, b) = (a.min(b), a.max(b));
            links.push((a, b, random_faults(&mut rng)));
        }
        // Random chords give the mesh real alternate paths.
        for a in 0..brokers {
            for b in (a + 2)..brokers {
                if (a, b) != (0, brokers - 1) && rng.chance(0.4) {
                    links.push((a, b, random_faults(&mut rng)));
                }
            }
        }
        links.sort_by_key(|&(a, b, _)| (a, b));

        let step_count = 10 + rng.below(5);
        let mut steps = Vec::with_capacity(step_count);
        let mut down: Vec<(usize, usize)> = Vec::new();
        let mut dead: BTreeSet<usize> = BTreeSet::new();
        let mut partitioned = false;
        for _ in 0..step_count {
            steps.push(random_step(
                &mut rng,
                brokers,
                &links,
                &mut down,
                &mut dead,
                &mut partitioned,
            ));
        }
        // End on a healed, fully-revived world so the final oracle pass
        // checks global convergence, not just a partial island.
        if partitioned {
            steps.push(SimStep::Heal);
        }
        for broker in dead {
            steps.push(SimStep::Restart { broker });
        }
        for (a, b) in down {
            steps.push(SimStep::LinkUp {
                a,
                b,
                faults: random_faults(&mut rng),
            });
        }

        SimPlan {
            seed,
            brokers,
            links,
            steps,
        }
    }
}

fn random_faults(rng: &mut SimRng) -> LinkFaults {
    let delay_min = rng.range(0, 2);
    LinkFaults {
        drop_p: rng.fraction(0.3),
        dup_p: rng.fraction(0.3),
        delay_min,
        delay_max: delay_min + rng.range(0, 3),
    }
}

/// Draw one step, tracking enough plan-time state (`down`, `dead`,
/// `partitioned`) to keep the schedule interesting — e.g. restarts are
/// only scheduled for brokers some earlier step killed.
fn random_step(
    rng: &mut SimRng,
    brokers: usize,
    links: &[(usize, usize, LinkFaults)],
    down: &mut Vec<(usize, usize)>,
    dead: &mut BTreeSet<usize>,
    partitioned: &mut bool,
) -> SimStep {
    loop {
        match rng.below(8) {
            0 | 1 => {
                // Uploads are the workload that feeds the WAL oracle.
                return SimStep::ClickUpload {
                    broker: rng.below(brokers),
                    forged: rng.chance(0.25),
                };
            }
            2 => {
                if let Some(&(a, b, _)) = links.get(rng.below(links.len())) {
                    if !down.contains(&(a, b)) {
                        down.push((a, b));
                        return SimStep::LinkDown { a, b };
                    }
                }
            }
            3 => {
                if let Some(i) = (!down.is_empty()).then(|| rng.below(down.len())) {
                    let (a, b) = down.remove(i);
                    return SimStep::LinkUp {
                        a,
                        b,
                        faults: random_faults(rng),
                    };
                }
            }
            4 => {
                // Kill at most one broker at a time: the oracles want a
                // connected majority to keep asserting against.
                if dead.is_empty() {
                    let broker = rng.below(brokers);
                    dead.insert(broker);
                    let torn = if rng.chance(0.5) {
                        rng.range(1, 32) as u16
                    } else {
                        0
                    };
                    return SimStep::Kill { broker, torn };
                }
            }
            5 => {
                if let Some(&broker) = dead.iter().next() {
                    dead.remove(&broker);
                    return SimStep::Restart { broker };
                }
            }
            6 => {
                if !*partitioned && brokers >= 3 {
                    *partitioned = true;
                    // A singleton split: the minority island must see
                    // zero traffic from the rest.
                    let group: BTreeSet<usize> = [rng.below(brokers)].into_iter().collect();
                    return SimStep::Partition { group };
                }
            }
            _ => {
                if *partitioned {
                    *partitioned = false;
                    return SimStep::Heal;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        for seed in 0..50 {
            let a = SimPlan::from_seed(seed);
            let b = SimPlan::from_seed(seed);
            assert_eq!(a.brokers, b.brokers);
            assert_eq!(a.links, b.links);
            assert_eq!(a.steps, b.steps);
        }
    }

    #[test]
    fn plans_end_whole() {
        // The generator promises to heal and revive before the final
        // oracle pass.
        for seed in 0..50 {
            let plan = SimPlan::from_seed(seed);
            let mut dead: BTreeSet<usize> = BTreeSet::new();
            let mut partitioned = false;
            for step in &plan.steps {
                match step {
                    SimStep::Kill { broker, .. } => {
                        dead.insert(*broker);
                    }
                    SimStep::Restart { broker } => {
                        dead.remove(broker);
                    }
                    SimStep::Partition { .. } => partitioned = true,
                    SimStep::Heal => partitioned = false,
                    _ => {}
                }
            }
            assert!(dead.is_empty(), "seed {seed} leaves a broker dead");
            assert!(!partitioned, "seed {seed} leaves a partition");
        }
    }
}
